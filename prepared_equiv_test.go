package pyquery_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"pyquery"
	"pyquery/internal/leakcheck"
	"pyquery/internal/relation"
	"pyquery/internal/workload"
)

// Equivalence contract of the prepared-statement redesign: for every
// engine class, Prepared.Exec/ExecBool must be set-equal to the one-shot
// EvaluateOpts/EvaluateBoolOpts (compiled fresh via NoCache), across
// parallelism levels, across repeated executions of one Prepared, across
// parameter bindings vs. inlined constants, and across database mutations
// (the staleness replan).

// oneShot evaluates from scratch, bypassing the plan cache — the pre-PR-5
// behavior every prepared execution is pinned against.
func oneShot(t *testing.T, q *pyquery.CQ, db *pyquery.DB, par int) *pyquery.Relation {
	t.Helper()
	want, err := pyquery.EvaluateOpts(q, db, pyquery.Options{Parallelism: par, NoCache: true})
	if err != nil {
		t.Fatalf("one-shot: %v", err)
	}
	return want
}

func assertPreparedAgrees(t *testing.T, tag string, q *pyquery.CQ, db *pyquery.DB) {
	t.Helper()
	ctx := context.Background()
	for _, par := range []int{1, 3} {
		want := oneShot(t, q, db, par)
		wantOK, err := pyquery.EvaluateBoolOpts(q, db, pyquery.Options{Parallelism: par, NoCache: true})
		if err != nil {
			t.Fatalf("%s one-shot bool: %v", tag, err)
		}
		p, err := pyquery.Prepare(q, db, pyquery.Options{Parallelism: par})
		if err != nil {
			t.Fatalf("%s prepare: %v", tag, err)
		}
		// Repeated executions of one Prepared must keep answering the same.
		for rep := 0; rep < 3; rep++ {
			got, err := p.Exec(ctx)
			if err != nil {
				t.Fatalf("%s par=%d rep=%d exec: %v", tag, par, rep, err)
			}
			if !relation.EqualSet(got, want) {
				t.Fatalf("%s par=%d rep=%d: prepared answer differs from one-shot\nwant %v\ngot  %v",
					tag, par, rep, want, got)
			}
			gotOK, err := p.ExecBool(ctx)
			if err != nil {
				t.Fatalf("%s par=%d rep=%d execbool: %v", tag, par, rep, err)
			}
			if gotOK != wantOK {
				t.Fatalf("%s par=%d rep=%d: ExecBool=%v, one-shot %v", tag, par, rep, gotOK, wantOK)
			}
		}
		// Streaming must enumerate exactly the answer set.
		streamed := pyquery.NewTable(len(q.Head))
		if err := p.ForEach(ctx, func(tuple []pyquery.Value) bool {
			streamed.Append(tuple...)
			return true
		}); err != nil {
			t.Fatalf("%s foreach: %v", tag, err)
		}
		if !relation.EqualSet(streamed, want) {
			t.Fatalf("%s par=%d: ForEach stream differs from one-shot", tag, par)
		}
	}
}

func TestPreparedEquivYannakakis(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		q := pathQuery()
		db := pathDB(rnd)
		if pyquery.Plan(q) != pyquery.EngineYannakakis {
			t.Fatal("class drift")
		}
		assertPreparedAgrees(t, fmt.Sprintf("yannakakis/seed=%d", seed), q, db)
	}
}

func TestPreparedEquivColorCoding(t *testing.T) {
	for seed := int64(100); seed < 115; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		q := pathQuery()
		q.Ineqs = []pyquery.Ineq{pyquery.NeqVars(0, 3)}
		if pyquery.Plan(q) != pyquery.EngineColorCoding {
			t.Fatal("class drift")
		}
		assertPreparedAgrees(t, fmt.Sprintf("colorcoding/seed=%d", seed), q, pathDB(rnd))
	}
}

func TestPreparedEquivComparisons(t *testing.T) {
	for seed := int64(200); seed < 215; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		q := pathQuery()
		q.Cmps = []pyquery.Cmp{pyquery.Lt(pyquery.V(0), pyquery.V(3))}
		if pyquery.Plan(q) != pyquery.EngineComparisons {
			t.Fatal("class drift")
		}
		assertPreparedAgrees(t, fmt.Sprintf("comparisons/seed=%d", seed), q, pathDB(rnd))
	}
}

func TestPreparedEquivGeneric(t *testing.T) {
	for seed := int64(300); seed < 315; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		db := pyquery.NewDB()
		db.Set("E", randEdges(rnd, 150+rnd.Intn(100), 15+rnd.Intn(10)))
		tri := &pyquery.CQ{
			Head: []pyquery.Term{pyquery.V(0), pyquery.V(1), pyquery.V(2)},
			Atoms: []pyquery.Atom{
				pyquery.NewAtom("E", pyquery.V(0), pyquery.V(1)),
				pyquery.NewAtom("E", pyquery.V(1), pyquery.V(2)),
				pyquery.NewAtom("E", pyquery.V(2), pyquery.V(0)),
			},
			Ineqs: []pyquery.Ineq{pyquery.NeqVars(0, 1)},
		}
		if pyquery.Plan(tri) != pyquery.EngineGeneric {
			t.Fatal("class drift")
		}
		assertPreparedAgrees(t, fmt.Sprintf("generic/seed=%d", seed), tri, db)
	}
}

func TestPreparedEquivDecomp(t *testing.T) {
	for seed := int64(500); seed < 512; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		db := pyquery.NewDB()
		db.Set("E", randEdges(rnd, 250+rnd.Intn(150), 18+rnd.Intn(8)))
		cyc := workload.CycleQuery(4 + int(seed%2)*2)
		if pyquery.Plan(cyc) != pyquery.EngineDecomp {
			t.Fatal("class drift")
		}
		assertPreparedAgrees(t, fmt.Sprintf("decomp/seed=%d", seed), cyc, db)
	}
}

// The worst-case-optimal class: dense skewed hub graphs route triangle and
// clique queries to the leapfrog engine, whose frozen tries must keep
// answering like the one-shot path across repeats, parallelism, and
// streaming.
func TestPreparedEquivWCOJ(t *testing.T) {
	for i, q := range []*pyquery.CQ{workload.TriangleQuery(), workload.CliqueQuery(4)} {
		db := workload.HubGraphDB(120+20*i, 5)
		p, err := pyquery.Prepare(q, db, pyquery.Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Engine(); got != pyquery.EngineWCOJ {
			t.Fatalf("case %d: prepared engine %v, want wcoj", i, got)
		}
		assertPreparedAgrees(t, fmt.Sprintf("wcoj/case=%d", i), q, db)
		// The A7 ablation must re-route to the backtracker with the same
		// answers.
		pa, err := pyquery.Prepare(q, db, pyquery.Options{Parallelism: 1, NoWCOJ: true})
		if err != nil {
			t.Fatal(err)
		}
		if got := pa.Engine(); got == pyquery.EngineWCOJ {
			t.Fatalf("case %d: NoWCOJ still routed to wcoj", i)
		}
		want := oneShot(t, q, db, 1)
		got, err := pa.Exec(context.Background())
		if err != nil || !relation.EqualSet(got, want) {
			t.Fatalf("case %d: NoWCOJ answer drifted (%v)", i, err)
		}
	}
}

// Parameter bindings must answer exactly like the same template with the
// constants inlined, for every engine class's parameterized variant.
func TestPreparedParamsMatchInlinedConstants(t *testing.T) {
	type tc struct {
		name   string
		build  func() *pyquery.CQ
		engine pyquery.Engine // class of the inlined query
	}
	cases := []tc{
		{"yannakakis", func() *pyquery.CQ {
			return &pyquery.CQ{
				Head: []pyquery.Term{pyquery.V(1), pyquery.V(2)},
				Atoms: []pyquery.Atom{
					pyquery.NewAtom("R0", pyquery.P("a"), pyquery.V(1)),
					pyquery.NewAtom("R1", pyquery.V(1), pyquery.V(2)),
				},
			}
		}, pyquery.EngineYannakakis},
		{"colorcoding", func() *pyquery.CQ {
			return &pyquery.CQ{
				Head: []pyquery.Term{pyquery.V(0), pyquery.V(2)},
				Atoms: []pyquery.Atom{
					pyquery.NewAtom("R0", pyquery.V(0), pyquery.V(1)),
					pyquery.NewAtom("R1", pyquery.V(1), pyquery.V(2)),
					pyquery.NewAtom("R2", pyquery.V(2), pyquery.P("a")),
				},
				Ineqs: []pyquery.Ineq{pyquery.NeqVars(0, 2)},
			}
		}, pyquery.EngineColorCoding},
		{"comparisons", func() *pyquery.CQ {
			return &pyquery.CQ{
				Head: []pyquery.Term{pyquery.V(0), pyquery.V(3)},
				Atoms: []pyquery.Atom{
					pyquery.NewAtom("R0", pyquery.V(0), pyquery.V(1)),
					pyquery.NewAtom("R1", pyquery.V(1), pyquery.V(2)),
					pyquery.NewAtom("R2", pyquery.V(2), pyquery.V(3)),
				},
				Cmps: []pyquery.Cmp{pyquery.Lt(pyquery.V(0), pyquery.P("c"))},
			}
		}, pyquery.EngineComparisons},
		{"generic", func() *pyquery.CQ {
			return &pyquery.CQ{
				Head: []pyquery.Term{pyquery.V(0), pyquery.V(1)},
				Atoms: []pyquery.Atom{
					pyquery.NewAtom("R0", pyquery.V(0), pyquery.V(1)),
					pyquery.NewAtom("R1", pyquery.V(1), pyquery.V(2)),
					pyquery.NewAtom("R2", pyquery.V(2), pyquery.V(0)),
					pyquery.NewAtom("R0", pyquery.V(0), pyquery.P("a")),
				},
				Ineqs: []pyquery.Ineq{pyquery.NeqVars(0, 1)},
			}
		}, pyquery.EngineGeneric},
		{"decomp-class", func() *pyquery.CQ {
			return &pyquery.CQ{
				Head: []pyquery.Term{pyquery.V(0), pyquery.V(2)},
				Atoms: []pyquery.Atom{
					pyquery.NewAtom("R0", pyquery.V(0), pyquery.V(1)),
					pyquery.NewAtom("R1", pyquery.V(1), pyquery.V(2)),
					pyquery.NewAtom("R2", pyquery.V(2), pyquery.V(3)),
					pyquery.NewAtom("R0", pyquery.V(3), pyquery.V(0)),
					pyquery.NewAtom("R1", pyquery.V(3), pyquery.P("a")),
				},
			}
		}, pyquery.EngineDecomp},
	}
	ctx := context.Background()
	for _, c := range cases {
		for seed := int64(700); seed < 708; seed++ {
			rnd := rand.New(rand.NewSource(seed))
			db := pathDB(rnd)
			tmpl := c.build()
			p, err := pyquery.Prepare(tmpl, db, pyquery.Options{Parallelism: 1})
			if err != nil {
				t.Fatalf("%s prepare: %v", c.name, err)
			}
			// Param head positions don't occur here; every case binds $a/$c.
			name := tmpl.Params()[0]
			for val := 0; val < 10; val += 3 { // includes values outside the domain
				inlined, err := tmpl.BindParams(map[string]pyquery.Value{name: pyquery.Value(val)})
				if err != nil {
					t.Fatalf("%s bind: %v", c.name, err)
				}
				if got := pyquery.Plan(inlined); got != c.engine {
					t.Fatalf("%s: inlined query classifies as %v, want %v", c.name, got, c.engine)
				}
				want := oneShot(t, inlined, db, 1)
				got, err := p.Exec(ctx, pyquery.Bind(name, pyquery.Value(val)))
				if err != nil {
					t.Fatalf("%s exec($%s=%d): %v", c.name, name, val, err)
				}
				if !relation.EqualSet(got, want) {
					t.Fatalf("%s $%s=%d: prepared differs from inlined one-shot\nwant %v\ngot  %v",
						c.name, name, val, want, got)
				}
				wantOK, _ := pyquery.EvaluateBoolOpts(inlined, db, pyquery.Options{Parallelism: 1, NoCache: true})
				gotOK, err := p.ExecBool(ctx, pyquery.Bind(name, pyquery.Value(val)))
				if err != nil || gotOK != wantOK {
					t.Fatalf("%s $%s=%d bool: got (%v,%v), want %v", c.name, name, val, gotOK, err, wantOK)
				}
			}
		}
	}
}

// After DB.Set, executions must transparently replan against the new data —
// both on a held Prepared and through the facade's plan cache.
func TestPreparedStalenessReplan(t *testing.T) {
	ctx := context.Background()
	for seed := int64(800); seed < 810; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		db := pathDB(rnd)
		q := pathQuery()
		p, err := pyquery.Prepare(q, db, pyquery.Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Exec(ctx); err != nil {
			t.Fatal(err)
		}
		// Mutate: swap one relation, including the degenerate empty swap.
		if seed%3 == 0 {
			db.Set("R1", pyquery.NewTable(2))
		} else {
			db.Set("R1", randEdges(rnd, 30+rnd.Intn(40), 6+rnd.Intn(6)))
		}
		want := oneShot(t, q, db, 1)
		got, err := p.Exec(ctx)
		if err != nil {
			t.Fatalf("post-Set exec: %v", err)
		}
		if !relation.EqualSet(got, want) {
			t.Fatalf("seed=%d: stale plan served after Set\nwant %v\ngot  %v", seed, want, got)
		}
		// The facade's cached path must replan too.
		cached, err := pyquery.EvaluateOpts(q, db, pyquery.Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !relation.EqualSet(cached, want) {
			t.Fatalf("seed=%d: facade cache served a stale answer after Set", seed)
		}
	}
}

// Prepared.Decide must agree with membership in the evaluated answer set,
// including head constants and repeated head variables.
func TestPreparedDecide(t *testing.T) {
	ctx := context.Background()
	for seed := int64(900); seed < 910; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		db := pathDB(rnd)
		q := pathQuery()
		want := oneShot(t, q, db, 1)
		p, err := pyquery.Prepare(q, db, pyquery.Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		check := func(tu []pyquery.Value) {
			got, err := p.Decide(ctx, tu)
			if err != nil {
				t.Fatalf("decide: %v", err)
			}
			free, err := pyquery.Decide(q, db, tu)
			if err != nil {
				t.Fatalf("facade decide: %v", err)
			}
			wantIn := want.Contains(tu)
			if got != wantIn || free != wantIn {
				t.Fatalf("seed=%d decide(%v): prepared=%v facade=%v, want %v", seed, tu, got, free, wantIn)
			}
		}
		for i := 0; i < want.Len() && i < 5; i++ {
			check(want.Row(i))
		}
		for i := 0; i < 10; i++ {
			check([]pyquery.Value{pyquery.Value(rnd.Intn(12)), pyquery.Value(rnd.Intn(12))})
		}
	}

	// Head constants and repeated head variables.
	db := pyquery.NewDB()
	db.Set("E", pyquery.Table(2, []pyquery.Value{1, 2}, []pyquery.Value{2, 2}, []pyquery.Value{3, 3}))
	q := &pyquery.CQ{
		Head:  []pyquery.Term{pyquery.C(7), pyquery.V(0), pyquery.V(0)},
		Atoms: []pyquery.Atom{pyquery.NewAtom("E", pyquery.V(0), pyquery.V(0))},
	}
	p, err := pyquery.Prepare(q, db, pyquery.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		tuple []pyquery.Value
		want  bool
	}{
		{[]pyquery.Value{7, 2, 2}, true},
		{[]pyquery.Value{7, 3, 3}, true},
		{[]pyquery.Value{7, 1, 1}, false}, // E(1,1) absent
		{[]pyquery.Value{8, 2, 2}, false}, // head constant mismatch
		{[]pyquery.Value{7, 2, 3}, false}, // repeated head variable mismatch
	} {
		got, err := p.Decide(context.Background(), tc.tuple)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("Decide(%v) = %v, want %v", tc.tuple, got, tc.want)
		}
	}
	if _, err := p.Decide(context.Background(), []pyquery.Value{1, 2}); err == nil {
		t.Fatal("arity mismatch should error")
	}
}

// Decide on parameterized templates: head stripping reorders (and can
// drop) the parameter list of the lazily compiled membership plan, so the
// binding order must be remapped — regression test for the param-order
// bug found in review.
func TestPreparedDecideWithParams(t *testing.T) {
	ctx := context.Background()
	db := pyquery.NewDB()
	db.Set("R", pyquery.Table(2, []pyquery.Value{10, 5}, []pyquery.Value{11, 6}))
	db.Set("S", pyquery.Table(2, []pyquery.Value{5, 20}, []pyquery.Value{6, 21}))

	// $a occurs in the head BEFORE $b, but only AFTER $b in the body — the
	// head-stripped program binds [b, a] while the template binds [a, b].
	q := &pyquery.CQ{
		Head: []pyquery.Term{pyquery.P("a"), pyquery.V(1)},
		Atoms: []pyquery.Atom{
			pyquery.NewAtom("R", pyquery.P("b"), pyquery.V(0)),
			pyquery.NewAtom("S", pyquery.V(0), pyquery.V(1)),
			pyquery.NewAtom("S", pyquery.V(0), pyquery.P("a")),
		},
	}
	p, err := pyquery.Prepare(q, db, pyquery.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		a, b  pyquery.Value
		tuple []pyquery.Value
		want  bool
	}{
		{20, 10, []pyquery.Value{20, 20}, true},  // R(10,5), S(5,20), S(5,20)
		{21, 11, []pyquery.Value{21, 21}, true},  // R(11,6), S(6,21), S(6,21)
		{20, 11, []pyquery.Value{20, 21}, false}, // S(6,20) absent
		{20, 10, []pyquery.Value{99, 20}, false}, // head position ≠ $a binding
		{20, 10, []pyquery.Value{20, 21}, false}, // S(5,21) absent
	} {
		got, err := p.Decide(ctx, tc.tuple, pyquery.Bind("a", tc.a), pyquery.Bind("b", tc.b))
		if err != nil {
			t.Fatalf("Decide(a=%d,b=%d,%v): %v", tc.a, tc.b, tc.tuple, err)
		}
		if got != tc.want {
			t.Fatalf("Decide(a=%d,b=%d,%v) = %v, want %v", tc.a, tc.b, tc.tuple, got, tc.want)
		}
		// Cross-check against the inlined one-shot answer set.
		inlined, err := q.BindParams(map[string]pyquery.Value{"a": tc.a, "b": tc.b})
		if err != nil {
			t.Fatal(err)
		}
		want := oneShot(t, inlined, db, 1)
		if want.Contains(tc.tuple) != tc.want {
			t.Fatalf("test vector inconsistent with one-shot for a=%d b=%d %v", tc.a, tc.b, tc.tuple)
		}
	}

	// A parameter appearing only in the head vanishes from the membership
	// body entirely; Decide must still check it against the tuple.
	ho := &pyquery.CQ{
		Head:  []pyquery.Term{pyquery.P("h"), pyquery.V(0)},
		Atoms: []pyquery.Atom{pyquery.NewAtom("R", pyquery.V(0), pyquery.V(1))},
	}
	ph, err := pyquery.Prepare(ho, db, pyquery.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := ph.Decide(ctx, []pyquery.Value{7, 10}, pyquery.Bind("h", 7)); err != nil || !got {
		t.Fatalf("head-only param: Decide = (%v, %v), want true", got, err)
	}
	if got, err := ph.Decide(ctx, []pyquery.Value{8, 10}, pyquery.Bind("h", 7)); err != nil || got {
		t.Fatalf("head-only param mismatch: Decide = (%v, %v), want false", got, err)
	}
}

// A context that is already canceled must surface ctx.Err() from every
// engine class before any work runs.
func TestPreparedCanceledContext(t *testing.T) {
	leakcheck.Check(t)
	rnd := rand.New(rand.NewSource(42))
	db := pathDB(rnd)
	tridb := pyquery.NewDB()
	tridb.Set("E", randEdges(rnd, 200, 20))

	ineq := pathQuery()
	ineq.Ineqs = []pyquery.Ineq{pyquery.NeqVars(0, 3)}
	cmp := pathQuery()
	cmp.Cmps = []pyquery.Cmp{pyquery.Lt(pyquery.V(0), pyquery.V(3))}
	tri := &pyquery.CQ{
		Head: []pyquery.Term{pyquery.V(0)},
		Atoms: []pyquery.Atom{
			pyquery.NewAtom("E", pyquery.V(0), pyquery.V(1)),
			pyquery.NewAtom("E", pyquery.V(1), pyquery.V(2)),
			pyquery.NewAtom("E", pyquery.V(2), pyquery.V(0)),
		},
		Ineqs: []pyquery.Ineq{pyquery.NeqVars(0, 1)},
	}
	cyc := workload.CycleQuery(4)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range []struct {
		name string
		q    *pyquery.CQ
		db   *pyquery.DB
	}{
		{"yannakakis", pathQuery(), db},
		{"colorcoding", ineq, db},
		{"comparisons", cmp, db},
		{"generic", tri, tridb},
		{"decomp", cyc, tridb},
		{"wcoj", workload.TriangleQuery(), workload.HubGraphDB(150, 5)},
	} {
		p, err := pyquery.Prepare(tc.q, tc.db, pyquery.Options{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if _, err := p.Exec(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: Exec on canceled ctx returned %v, want context.Canceled", tc.name, err)
		}
		if _, err := p.ExecBool(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: ExecBool on canceled ctx returned %v, want context.Canceled", tc.name, err)
		}
		if err := p.ForEach(ctx, func([]pyquery.Value) bool { return true }); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: ForEach on canceled ctx returned %v, want context.Canceled", tc.name, err)
		}
		var rowsErr error
		for _, err := range p.Rows(ctx) {
			rowsErr = err
		}
		if !errors.Is(rowsErr, context.Canceled) {
			t.Fatalf("%s: Rows on canceled ctx yielded %v, want context.Canceled", tc.name, rowsErr)
		}
	}
}

// A deadline that expires mid-search must abort the backtracker and return
// ctx.Err() — the search would otherwise enumerate millions of nodes.
func TestPreparedDeadlineMidRun(t *testing.T) {
	leakcheck.Check(t)
	n := 160
	edges := pyquery.NewTable(2)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				edges.Append(pyquery.Value(i), pyquery.Value(j))
			}
		}
	}
	db := pyquery.NewDB()
	db.Set("E", edges)
	tri := &pyquery.CQ{
		Head: []pyquery.Term{pyquery.V(0), pyquery.V(1), pyquery.V(2)},
		Atoms: []pyquery.Atom{
			pyquery.NewAtom("E", pyquery.V(0), pyquery.V(1)),
			pyquery.NewAtom("E", pyquery.V(1), pyquery.V(2)),
			pyquery.NewAtom("E", pyquery.V(2), pyquery.V(0)),
		},
		Ineqs: []pyquery.Ineq{pyquery.NeqVars(0, 2)},
	}
	for _, par := range []int{1, 4} {
		p, err := pyquery.Prepare(tri, db, pyquery.Options{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		_, err = p.Exec(ctx)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("par=%d: Exec under 20ms deadline returned %v, want context.DeadlineExceeded", par, err)
		}
	}
}

// Streaming early-stop: breaking out of Rows must end the iteration
// without error and without enumerating the rest.
func TestPreparedRowsEarlyStop(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	db := pathDB(rnd)
	p, err := pyquery.Prepare(pathQuery(), db, pyquery.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := oneShot(t, pathQuery(), db, 1)
	if want.Len() < 2 {
		t.Skip("answer too small for an early-stop test")
	}
	n := 0
	for tuple, err := range p.Rows(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		if len(tuple) != 2 {
			t.Fatalf("bad tuple width %d", len(tuple))
		}
		n++
		if n == 2 {
			break
		}
	}
	if n != 2 {
		t.Fatalf("stopped after %d rows, want 2", n)
	}
}

// The facade's free functions share one cached Prepared per (query,
// options) fingerprint.
func TestFacadePlanCacheReuse(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	db := pathDB(rnd)
	q := pathQuery()
	if _, err := pyquery.Evaluate(q, db); err != nil {
		t.Fatal(err)
	}
	if _, err := pyquery.Evaluate(q, db); err != nil {
		t.Fatal(err)
	}
	if got := db.Plans().Len(); got != 1 {
		t.Fatalf("plan cache holds %d entries after two identical Evaluates, want 1", got)
	}
	if _, err := pyquery.EvaluateOpts(q, db, pyquery.Options{Parallelism: 2}); err != nil {
		t.Fatal(err)
	}
	if got := db.Plans().Len(); got != 2 {
		t.Fatalf("plan cache holds %d entries after a second options shape, want 2", got)
	}
}
