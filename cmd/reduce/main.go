// Command reduce materializes the paper's reductions on concrete instances
// and cross-checks both sides, printing the constructed artifacts:
//
//	reduce -what clique2cq   -n 8 -p 0.5 -k 3 -seed 1
//	reduce -what clique2cmp  -n 6 -k 3
//	reduce -what cq22cnf     -n 8 -p 0.5 -k 3
//	reduce -what hampath     -n 6 -p 0.5
//	reduce -what circuit2fo  -k 2
//
// Useful for inspecting what the Theorem 1/3 constructions actually build.
package main

import (
	"flag"
	"fmt"
	"os"

	"pyquery/internal/boolcirc"
	"pyquery/internal/core"
	"pyquery/internal/eval"
	"pyquery/internal/graph"
	"pyquery/internal/order"
	"pyquery/internal/reductions"
)

func main() {
	what := flag.String("what", "clique2cq", "clique2cq | clique2cmp | cq22cnf | hampath | circuit2fo")
	n := flag.Int("n", 8, "graph vertices")
	p := flag.Float64("p", 0.5, "edge probability")
	k := flag.Int("k", 3, "parameter (clique size / weight)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	g := graph.Random(*n, *p, *seed)
	switch *what {
	case "clique2cq":
		q, db := reductions.CliqueToCQ(g, *k)
		fmt.Printf("graph: %v, k=%d\nquery: %v\n", g, *k, q)
		fmt.Printf("query size q=%d, variables v=%d, database %d tuples\n",
			q.Size(), q.NumVars(), db.Size())
		got, err := eval.ConjunctiveBool(q, db)
		check(err)
		fmt.Printf("query answer: %v; clique oracle: %v\n", got, g.HasClique(*k))

	case "clique2cmp":
		q, db := reductions.CliqueToComparisons(g, *k)
		fmt.Printf("graph: %v, k=%d\n", g, *k)
		fmt.Printf("query: %d atoms, %d comparisons, acyclic=%v\n",
			len(q.Atoms), len(q.Cmps), order.IsAcyclicWithComparisons(q))
		fmt.Printf("database: P=%d R=%d tuples\n", db.MustRel("P").Len(), db.MustRel("R").Len())
		got, err := order.EvaluateBool(q, db)
		check(err)
		fmt.Printf("query answer: %v; clique oracle: %v\n", got, g.HasClique(*k))

	case "cq22cnf":
		q, db := reductions.CliqueToCQ(g, *k)
		red, err := reductions.CQToWeighted2CNF(q, db)
		check(err)
		fmt.Printf("query: %v\n2-CNF: %d variables, %d clauses, target weight %d\n",
			q, red.Formula.NumVars, len(red.Formula.Clauses), red.K)
		assign, ok := red.Formula.WeightedSatisfiable(red.K)
		fmt.Printf("weighted 2-CNF: sat=%v; clique oracle: %v\n", ok, g.HasClique(*k))
		if ok {
			fmt.Printf("decoded witness: %v\n", red.Decode(assign))
		}

	case "hampath":
		q, db := reductions.HamPathToIneqCQ(g)
		fmt.Printf("graph: %v\nquery: %d atoms, %d inequalities (acyclic-with-≠: %v)\n",
			g, len(q.Atoms), len(q.Ineqs), core.IsAcyclicWithIneqs(q))
		got, err := core.EvaluateBool(q, db)
		check(err)
		_, want := g.HamiltonianPath()
		fmt.Printf("query answer: %v; Held–Karp oracle: %v\n", got, want)

	case "circuit2fo":
		// A fixed illustrative circuit: OR(AND(x0,x1), AND(x1,x2)).
		c := boolcirc.New(3)
		a1 := c.AddGate(boolcirc.And, 0, 1)
		a2 := c.AddGate(boolcirc.And, 1, 2)
		c.SetOutput(c.AddGate(boolcirc.Or, a1, a2))
		fo, db, err := reductions.MonotoneCircuitToFO(c, *k)
		check(err)
		fmt.Printf("circuit: %v, k=%d\nFO query: %v\n", c, *k, fo)
		fmt.Printf("wiring relation: %d tuples\n", db.MustRel("C").Len())
		got, err := eval.FirstOrderBool(fo, db)
		check(err)
		_, want := c.WeightedSatisfiable(*k)
		fmt.Printf("query answer: %v; circuit oracle: %v\n", got, want)

	default:
		fmt.Fprintf(os.Stderr, "reduce: unknown -what %q\n", *what)
		os.Exit(2)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "reduce:", err)
		os.Exit(1)
	}
}
