// Command qeval evaluates a query against CSV relations.
//
//	qeval -query 'G(e) :- EP(e,p), EP(e,q), p != q.' -rel EP=assignments.csv
//	qeval -query '{ (x) | forall y (!E(x,y)) }' -fo -rel E=edges.csv
//
// Each -rel flag names a relation and a CSV file; integer fields stay
// numeric, other fields are interned symbols. The engine is chosen
// automatically (see -explain) or forced with -engine.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pyquery"
	"pyquery/internal/decomp"
	"pyquery/internal/eval"
	"pyquery/internal/order"
	"pyquery/internal/parser"
	"pyquery/internal/relation"
	"pyquery/internal/wcoj"
	"pyquery/internal/yannakakis"

	"pyquery/internal/core"
)

type relFlags []string

func (r *relFlags) String() string { return strings.Join(*r, ",") }
func (r *relFlags) Set(s string) error {
	*r = append(*r, s)
	return nil
}

func main() {
	var rels relFlags
	queryText := flag.String("query", "", "query in rule syntax (or FO syntax with -fo)")
	fo := flag.Bool("fo", false, "parse the query as a first-order query { (head) | formula }")
	engine := flag.String("engine", "auto", "auto | generic | yannakakis | colorcoding | comparisons | decomp | wcoj")
	boolOnly := flag.Bool("bool", false, "only decide emptiness")
	par := flag.Int("par", 0, "parallelism: worker count (0 = GOMAXPROCS, 1 = serial)")
	repeat := flag.Int("repeat", 0, "prepare once and execute N times, reporting amortized ns/exec (auto engine only)")
	explain := flag.Bool("explain", false, "print the plan explanation before evaluating")
	timeout := flag.Duration("timeout", 0, "abort the evaluation after this duration (e.g. 500ms; 0 = no limit)")
	maxRows := flag.Int64("max-rows", 0, "abort after materializing this many rows (0 = no limit; auto engine only)")
	memLimit := flag.Int64("mem-limit", 0, "abort after approximately this many materialized bytes (0 = no limit; auto engine only)")
	degrade := flag.Bool("degrade", false, "when a decomposition blows the budget at prepare time, fall back to the backtracker instead of failing")
	flag.Var(&rels, "rel", "NAME=FILE.csv (repeatable)")
	flag.Parse()

	govOpts = pyquery.Options{Parallelism: *par, Timeout: *timeout,
		MaxRows: *maxRows, MemoryLimit: *memLimit, Degrade: *degrade}

	if *queryText == "" {
		fmt.Fprintln(os.Stderr, "qeval: -query is required")
		flag.Usage()
		os.Exit(2)
	}

	syms := parser.NewSymbols()
	p := parser.NewWithSymbols(syms)
	db := pyquery.NewDB()
	for _, spec := range rels {
		parts := strings.SplitN(spec, "=", 2)
		if len(parts) != 2 {
			fatal(fmt.Errorf("bad -rel %q (want NAME=FILE)", spec))
		}
		f, err := os.Open(parts[1])
		if err != nil {
			fatal(err)
		}
		err = parser.LoadCSV(db, parts[0], f, syms)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}

	if *fo {
		q, err := p.ParseFOQuery(*queryText)
		if err != nil {
			fatal(err)
		}
		res, err := pyquery.EvaluateFO(q, db)
		if err != nil {
			fatal(err)
		}
		printResult(res, syms, *boolOnly)
		return
	}

	q, err := p.ParseCQ(*queryText)
	if err != nil {
		fatal(err)
	}
	var report *pyquery.PlanReport
	if *explain {
		// The full cost-based report needs the database; fall back to the
		// query-only explanation if planning fails (e.g. unknown relation).
		// PlanDB reduces the atoms once for the report and the evaluation
		// below reduces them again — an accepted diagnostic-only cost.
		if r, err := pyquery.PlanDB(q, db); err == nil {
			report = r
			fmt.Println(r)
		} else {
			fmt.Println(pyquery.Explain(q))
		}
	}

	if *repeat > 0 {
		if *engine != "auto" {
			fatal(fmt.Errorf("-repeat works with the auto engine (prepared statements route themselves)"))
		}
		runRepeated(q, db, syms, *par, *repeat, *boolOnly)
		return
	}

	var res *relation.Relation
	switch *engine {
	case "auto":
		if *boolOnly {
			ok, err := pyquery.EvaluateBoolOpts(q, db, govOpts)
			if err != nil {
				fatal(err)
			}
			printBool(ok)
			return
		}
		// Explained decomposition runs go through the engine directly so
		// per-bag estimates and actual materialized cardinalities come from
		// one Route (diagnostic-only: this re-plans once more on top of
		// PlanDB's passes, an accepted -explain cost).
		if report != nil && report.Engine == pyquery.EngineDecomp {
			var st decomp.RunStats
			res, st, err = decomp.EvaluateStats(q, db, decomp.Options{Parallelism: *par})
			if err != nil {
				fatal(err)
			}
			for i, bag := range st.Route.Bags {
				actual := "- (skipped)"
				if i < len(st.BagRows) && st.BagRows[i] >= 0 {
					actual = fmt.Sprintf("%d", st.BagRows[i])
				}
				fmt.Printf("bag %d: estimated %.0f, actual %s\n", i+1, bag.Est, actual)
			}
			break
		}
		res, err = pyquery.EvaluateOpts(q, db, govOpts)
	case "generic":
		res, err = eval.ConjunctiveOpts(q, db, eval.Options{Parallelism: *par})
	case "yannakakis":
		res, err = yannakakis.EvaluateOpts(q, db, yannakakis.Options{Parallelism: *par})
	case "colorcoding":
		res, err = core.EvaluateOpts(q, db, core.Options{Parallelism: *par})
	case "comparisons":
		res, err = order.EvaluateOpts(q, db, eval.Options{Parallelism: *par})
	case "decomp":
		res, err = decomp.EvaluateOpts(q, db, decomp.Options{Parallelism: *par})
	case "wcoj":
		res, err = wcoj.Evaluate(q, db, *par)
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}
	if err != nil {
		fatal(err)
	}
	printResult(res, syms, *boolOnly)
	if report != nil && !*boolOnly && res.Width() > 0 {
		fmt.Printf("cardinality: estimated %.0f, actual %d\n", report.EstRows, res.Len())
	}
}

// runRepeated drives the prepared-statement API: Prepare pays the planning
// once, then the query executes -repeat times against the frozen plan and
// the amortized per-execution latency is reported alongside the answer.
func runRepeated(q *pyquery.CQ, db *pyquery.DB, syms *parser.Symbols, par, repeat int, boolOnly bool) {
	ctx := context.Background()
	tPrep := time.Now()
	opts := govOpts
	opts.Parallelism = par
	p, err := pyquery.Prepare(q, db, opts)
	if err != nil {
		fatal(err)
	}
	prepDur := time.Since(tPrep)

	var res *relation.Relation
	var ok bool
	tExec := time.Now()
	for i := 0; i < repeat; i++ {
		if boolOnly {
			ok, err = p.ExecBool(ctx)
		} else {
			res, err = p.Exec(ctx)
		}
		if err != nil {
			fatal(err)
		}
	}
	execDur := time.Since(tExec)

	if boolOnly {
		printBool(ok)
	} else {
		printResult(res, syms, false)
	}
	fmt.Printf("prepare: %v; %d execs: %v (amortized %d ns/exec)\n",
		prepDur, repeat, execDur, execDur.Nanoseconds()/int64(repeat))
}

func printResult(res *relation.Relation, syms *parser.Symbols, boolOnly bool) {
	if boolOnly || res.Width() == 0 {
		printBool(res.Bool())
		return
	}
	fmt.Printf("%d tuple(s)\n", res.Len())
	fmt.Print(parser.FormatRelation(res.Sort(), syms))
}

func printBool(ok bool) {
	if ok {
		fmt.Println("true")
	} else {
		fmt.Println("false")
	}
}

// govOpts carries the governor flags (-timeout, -max-rows, -mem-limit,
// -degrade) into every auto-engine evaluation path.
var govOpts pyquery.Options

// fatal renders the error and exits. Typed governor failures get a
// structured line — which limit tripped, in which engine, at which step,
// and the charged totals — instead of the raw error string.
func fatal(err error) {
	var le *pyquery.LimitError
	if errors.As(err, &le) {
		var what string
		switch {
		case errors.Is(err, pyquery.ErrRowLimit):
			what = fmt.Sprintf("row limit exceeded (%d rows materialized, limit %d)", le.Rows, le.Limit)
		case errors.Is(err, pyquery.ErrMemoryLimit):
			what = fmt.Sprintf("memory limit exceeded (~%d bytes materialized, limit %d)", le.Bytes, le.Limit)
		case errors.Is(err, pyquery.ErrTimeout):
			what = "timed out"
		case errors.Is(err, pyquery.ErrCanceled):
			what = "canceled"
		default:
			what = le.Kind.Error()
		}
		fmt.Fprintf(os.Stderr, "qeval: query aborted: %s [engine=%s, step=%s]\n", what, le.Engine, le.Step)
		os.Exit(1)
	}
	var ie *pyquery.InternalError
	if errors.As(err, &ie) {
		fmt.Fprintf(os.Stderr, "qeval: internal error in %s engine: %v\n", ie.Engine, ie.Value)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "qeval:", err)
	os.Exit(1)
}
