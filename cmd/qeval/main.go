// Command qeval evaluates a query against CSV relations.
//
//	qeval -query 'G(e) :- EP(e,p), EP(e,q), p != q.' -rel EP=assignments.csv
//	qeval -query '{ (x) | forall y (!E(x,y)) }' -fo -rel E=edges.csv
//
// Each -rel flag names a relation and a CSV file; integer fields stay
// numeric, other fields are interned symbols. The engine is chosen
// automatically (see -explain) or forced with -engine.
//
// With -watch the command becomes a standing query: it prints the initial
// answer, then polls the CSV files and, when one changes, reloads it, diffs
// it against the loaded relation, applies the exact tuple deltas, and
// incrementally refreshes the answer — printing only the rows that appeared
// (+) or disappeared (-).
//
// With -serve the command becomes a qserved client: it loads any -rel CSVs
// into the server, registers -query under the -stmt name (registration is
// the compile-once step — skip -query to execute an already registered
// statement), and executes it with the -arg NAME=VALUE bindings:
//
//	qeval -serve localhost:7347 -stmt bypop -rel City=cities.csv \
//	      -query 'Q(c) :- City(c,p), p > 1000000.'
//	qeval -serve localhost:7347 -stmt bypop
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pyquery"
	"pyquery/internal/decomp"
	"pyquery/internal/eval"
	"pyquery/internal/order"
	"pyquery/internal/parser"
	"pyquery/internal/relation"
	"pyquery/internal/wcoj"
	"pyquery/internal/yannakakis"

	"pyquery/internal/core"
)

type relFlags []string

func (r *relFlags) String() string { return strings.Join(*r, ",") }
func (r *relFlags) Set(s string) error {
	*r = append(*r, s)
	return nil
}

func main() {
	var rels relFlags
	queryText := flag.String("query", "", "query in rule syntax (or FO syntax with -fo)")
	fo := flag.Bool("fo", false, "parse the query as a first-order query { (head) | formula }")
	engine := flag.String("engine", "auto", "auto | generic | yannakakis | colorcoding | comparisons | decomp | wcoj")
	boolOnly := flag.Bool("bool", false, "only decide emptiness")
	par := flag.Int("par", 0, "parallelism: worker count (0 = GOMAXPROCS, 1 = serial)")
	repeat := flag.Int("repeat", 0, "prepare once and execute N times, reporting amortized ns/exec (auto engine only)")
	explain := flag.Bool("explain", false, "print the plan explanation before evaluating")
	timeout := flag.Duration("timeout", 0, "abort the evaluation after this duration (e.g. 500ms; 0 = no limit)")
	maxRows := flag.Int64("max-rows", 0, "abort after materializing this many rows (0 = no limit; auto engine only)")
	memLimit := flag.Int64("mem-limit", 0, "abort after approximately this many materialized bytes (0 = no limit; auto engine only)")
	degrade := flag.Bool("degrade", false, "when a decomposition blows the budget at prepare time, fall back to the backtracker instead of failing")
	watch := flag.Bool("watch", false, "keep running: poll the -rel files, apply tuple deltas on change, and refresh the answer incrementally")
	interval := flag.Duration("interval", 500*time.Millisecond, "poll interval for -watch")
	serve := flag.String("serve", "", "qserved address (host:port): run against a server instead of in-process")
	stmtName := flag.String("stmt", "", "with -serve: statement name to register (-query) and/or execute")
	var stmtArgs relFlags
	flag.Var(&stmtArgs, "arg", "with -serve: NAME=VALUE parameter binding (repeatable)")
	flag.Var(&rels, "rel", "NAME=FILE.csv (repeatable)")
	flag.Parse()

	if *serve != "" {
		if *stmtName == "" {
			fatal(errors.New("-serve requires -stmt (the statement name to register or execute)"))
		}
		runClient(*serve, *stmtName, *queryText, rels, stmtArgs, *boolOnly)
		return
	}

	govOpts = pyquery.Options{Parallelism: *par, Timeout: *timeout,
		MaxRows: *maxRows, MemoryLimit: *memLimit, Degrade: *degrade}

	if *queryText == "" {
		fmt.Fprintln(os.Stderr, "qeval: -query is required")
		flag.Usage()
		os.Exit(2)
	}

	syms := parser.NewSymbols()
	p := parser.NewWithSymbols(syms)
	db := pyquery.NewDB()
	for _, spec := range rels {
		parts := strings.SplitN(spec, "=", 2)
		if len(parts) != 2 {
			fatal(fmt.Errorf("bad -rel %q (want NAME=FILE)", spec))
		}
		f, err := os.Open(parts[1])
		if err != nil {
			fatal(err)
		}
		err = parser.LoadCSV(db, parts[0], f, syms)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}

	if *fo {
		if *watch {
			fatal(errors.New("-watch supports conjunctive queries only (not -fo)"))
		}
		q, err := p.ParseFOQuery(*queryText)
		if err != nil {
			fatal(err)
		}
		res, err := pyquery.EvaluateFO(q, db)
		if err != nil {
			fatal(err)
		}
		printResult(res, syms, *boolOnly)
		return
	}

	q, err := p.ParseCQ(*queryText)
	if err != nil {
		fatal(err)
	}
	var report *pyquery.PlanReport
	if *explain {
		// The full cost-based report needs the database; fall back to the
		// query-only explanation if planning fails (e.g. unknown relation).
		// PlanDB reduces the atoms once for the report and the evaluation
		// below reduces them again — an accepted diagnostic-only cost.
		if r, err := pyquery.PlanDB(q, db); err == nil {
			report = r
			fmt.Println(r)
		} else {
			fmt.Println(pyquery.Explain(q))
		}
	}

	if *watch {
		if *repeat > 0 || *engine != "auto" {
			fatal(errors.New("-watch works with the auto engine and excludes -repeat"))
		}
		runWatch(q, db, syms, rels, *interval)
		return
	}

	if *repeat > 0 {
		if *engine != "auto" {
			fatal(fmt.Errorf("-repeat works with the auto engine (prepared statements route themselves)"))
		}
		runRepeated(q, db, syms, *par, *repeat, *boolOnly)
		return
	}

	var res *relation.Relation
	switch *engine {
	case "auto":
		if *boolOnly {
			ok, err := pyquery.EvaluateBoolOpts(q, db, govOpts)
			if err != nil {
				fatal(err)
			}
			printBool(ok)
			return
		}
		// Explained decomposition runs go through the engine directly so
		// per-bag estimates and actual materialized cardinalities come from
		// one Route (diagnostic-only: this re-plans once more on top of
		// PlanDB's passes, an accepted -explain cost).
		if report != nil && report.Engine == pyquery.EngineDecomp {
			var st decomp.RunStats
			res, st, err = decomp.EvaluateStats(q, db, decomp.Options{Parallelism: *par})
			if err != nil {
				fatal(err)
			}
			for i, bag := range st.Route.Bags {
				actual := "- (skipped)"
				if i < len(st.BagRows) && st.BagRows[i] >= 0 {
					actual = fmt.Sprintf("%d", st.BagRows[i])
				}
				fmt.Printf("bag %d: estimated %.0f, actual %s\n", i+1, bag.Est, actual)
			}
			break
		}
		res, err = pyquery.EvaluateOpts(q, db, govOpts)
	case "generic":
		res, err = eval.ConjunctiveOpts(q, db, eval.Options{Parallelism: *par})
	case "yannakakis":
		res, err = yannakakis.EvaluateOpts(q, db, yannakakis.Options{Parallelism: *par})
	case "colorcoding":
		res, err = core.EvaluateOpts(q, db, core.Options{Parallelism: *par})
	case "comparisons":
		res, err = order.EvaluateOpts(q, db, eval.Options{Parallelism: *par})
	case "decomp":
		res, err = decomp.EvaluateOpts(q, db, decomp.Options{Parallelism: *par})
	case "wcoj":
		res, err = wcoj.Evaluate(q, db, *par)
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}
	if err != nil {
		fatal(err)
	}
	printResult(res, syms, *boolOnly)
	if report != nil && !*boolOnly && res.Width() > 0 {
		fmt.Printf("cardinality: estimated %.0f, actual %d\n", report.EstRows, res.Len())
	}
}

// runWatch turns qeval into a standing query: it prints the initial answer,
// then polls the -rel files and, whenever one's mtime or size changes,
// reloads the CSV, diffs it against the relation currently loaded, applies
// the exact tuple deltas (so the prepared statement's incremental
// maintenance sees O(Δ) work, not a wholesale replacement), and refreshes —
// printing only the appeared/disappeared rows. Ctrl-C exits.
func runWatch(q *pyquery.CQ, db *pyquery.DB, syms *parser.Symbols, rels []string, every time.Duration) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	type watched struct {
		name, path string
		mtime      time.Time
		size       int64
	}
	var files []*watched
	for _, spec := range rels {
		parts := strings.SplitN(spec, "=", 2)
		st, err := os.Stat(parts[1])
		if err != nil {
			fatal(err)
		}
		files = append(files, &watched{name: parts[0], path: parts[1], mtime: st.ModTime(), size: st.Size()})
	}

	prep, err := pyquery.Prepare(q, db, govOpts)
	if err != nil {
		fatal(err)
	}
	added, _, err := prep.Refresh(ctx)
	if err != nil {
		fatal(err)
	}
	printResult(added, syms, false)

	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		changed := false
		for _, f := range files {
			st, err := os.Stat(f.path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "qeval: %s: %v (keeping previous contents)\n", f.path, err)
				continue
			}
			if st.ModTime().Equal(f.mtime) && st.Size() == f.size {
				continue
			}
			f.mtime, f.size = st.ModTime(), st.Size()
			if err := applyFileDelta(db, f.name, f.path, syms); err != nil {
				fmt.Fprintf(os.Stderr, "qeval: %s: %v (keeping previous contents)\n", f.path, err)
				continue
			}
			changed = true
		}
		if !changed {
			continue
		}
		added, removed, err := prep.Refresh(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			fatal(err)
		}
		printChange(added, removed, syms)
	}
}

// applyFileDelta reloads one CSV and converts the file-level change into
// tuple-level Insert/Delete calls against the loaded relation. If the file's
// arity changed, the relation is replaced wholesale (the refresh then falls
// back to a rebuild).
func applyFileDelta(db *pyquery.DB, name, path string, syms *parser.Symbols) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	scratch := pyquery.NewDB()
	err = parser.LoadCSV(scratch, name, f, syms)
	f.Close()
	if err != nil {
		return err
	}
	nu := scratch.MustRel(name).Dedup()
	old, ok := db.Rel(name)
	if !ok || old.Width() != nu.Width() {
		db.Set(name, nu)
		return nil
	}
	inOld := relation.NewTupleMapSized(old.Width(), old.Len())
	for i := 0; i < old.Len(); i++ {
		inOld.Set(old.Row(i), 1)
	}
	inNew := relation.NewTupleMapSized(nu.Width(), nu.Len())
	var adds [][]pyquery.Value
	for i := 0; i < nu.Len(); i++ {
		row := nu.Row(i)
		inNew.Set(row, 1)
		if _, ok := inOld.Get(row); !ok {
			adds = append(adds, row)
		}
	}
	var dels [][]pyquery.Value
	for i := 0; i < old.Len(); i++ {
		row := old.Row(i)
		if _, ok := inNew.Get(row); !ok {
			// Copy: Delete swap-removes inside the relation backing old.
			dels = append(dels, append([]pyquery.Value(nil), row...))
		}
	}
	db.Delete(name, dels...)
	db.Insert(name, adds...)
	return nil
}

// printChange renders one refresh's delta: appeared rows with a leading +,
// disappeared rows with a leading -. Boolean (width-0) standing queries
// print the new truth value instead.
func printChange(added, removed *relation.Relation, syms *parser.Symbols) {
	if added.Width() == 0 {
		if added.Len() > 0 {
			fmt.Println("true")
		} else if removed.Len() > 0 {
			fmt.Println("false")
		}
		return
	}
	for _, sign := range []struct {
		mark string
		rel  *relation.Relation
	}{{"-", removed}, {"+", added}} {
		for _, line := range strings.Split(parser.FormatRelation(sign.rel.Sort(), syms), "\n") {
			if line != "" {
				fmt.Println(sign.mark, line)
			}
		}
	}
}

// runRepeated drives the prepared-statement API: Prepare pays the planning
// once, then the query executes -repeat times against the frozen plan and
// the amortized per-execution latency is reported alongside the answer.
func runRepeated(q *pyquery.CQ, db *pyquery.DB, syms *parser.Symbols, par, repeat int, boolOnly bool) {
	ctx := context.Background()
	tPrep := time.Now()
	opts := govOpts
	opts.Parallelism = par
	p, err := pyquery.Prepare(q, db, opts)
	if err != nil {
		fatal(err)
	}
	prepDur := time.Since(tPrep)

	var res *relation.Relation
	var ok bool
	tExec := time.Now()
	for i := 0; i < repeat; i++ {
		if boolOnly {
			ok, err = p.ExecBool(ctx)
		} else {
			res, err = p.Exec(ctx)
		}
		if err != nil {
			fatal(err)
		}
	}
	execDur := time.Since(tExec)

	if boolOnly {
		printBool(ok)
	} else {
		printResult(res, syms, false)
	}
	fmt.Printf("prepare: %v; %d execs: %v (amortized %d ns/exec)\n",
		prepDur, repeat, execDur, execDur.Nanoseconds()/int64(repeat))
}

func printResult(res *relation.Relation, syms *parser.Symbols, boolOnly bool) {
	if boolOnly || res.Width() == 0 {
		printBool(res.Bool())
		return
	}
	fmt.Printf("%d tuple(s)\n", res.Len())
	fmt.Print(parser.FormatRelation(res.Sort(), syms))
}

func printBool(ok bool) {
	if ok {
		fmt.Println("true")
	} else {
		fmt.Println("false")
	}
}

// runClient drives a qserved instance end-to-end: load -rel CSVs, register
// the -query under -stmt (when given), then execute the named statement
// with the -arg bindings and render the rows the same way the in-process
// paths do. Argument values parse as integers when they look numeric and
// travel as strings otherwise — the server interns them with the same
// Literal semantics its CSV loader uses, so client and server always agree
// on constants.
func runClient(addr, name, queryText string, rels, args []string, boolOnly bool) {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	for _, spec := range rels {
		parts := strings.SplitN(spec, "=", 2)
		if len(parts) != 2 {
			fatal(fmt.Errorf("bad -rel %q (want NAME=FILE)", spec))
		}
		f, err := os.Open(parts[1])
		if err != nil {
			fatal(err)
		}
		_, err = clientCall("POST", base+"/rel/"+parts[0], f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}
	if queryText != "" {
		body, _ := json.Marshal(map[string]string{"query": queryText})
		info, err := clientCall("PUT", base+"/stmt/"+name, bytes.NewReader(body))
		if err != nil {
			fatal(err)
		}
		var reg struct {
			Engine string   `json:"engine"`
			Params []string `json:"params"`
		}
		if err := json.Unmarshal(info, &reg); err == nil {
			line := "registered " + name + " [engine=" + reg.Engine
			if len(reg.Params) > 0 {
				line += ", params=" + strings.Join(reg.Params, ",")
			}
			fmt.Fprintln(os.Stderr, line+"]")
		}
	}
	params := make(map[string]any, len(args))
	for _, a := range args {
		parts := strings.SplitN(a, "=", 2)
		if len(parts) != 2 {
			fatal(fmt.Errorf("bad -arg %q (want NAME=VALUE)", a))
		}
		if n, err := strconv.ParseInt(parts[1], 10, 64); err == nil {
			params[parts[0]] = n
		} else {
			params[parts[0]] = parts[1]
		}
	}
	body, _ := json.Marshal(map[string]any{"params": params})
	raw, err := clientCall("POST", base+"/stmt/"+name+"/exec", bytes.NewReader(body))
	if err != nil {
		fatal(err)
	}
	var res struct {
		Rows  [][]any `json:"rows"`
		N     int     `json:"n"`
		Width int     `json:"width"`
		Bool  bool    `json:"bool"`
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		fatal(fmt.Errorf("bad exec response: %w", err))
	}
	if boolOnly || res.Width == 0 {
		printBool(res.Bool)
		return
	}
	fmt.Printf("%d tuple(s)\n", res.N)
	lines := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		fields := make([]string, len(row))
		for j, v := range row {
			switch t := v.(type) {
			case string:
				fields[j] = t
			case float64:
				fields[j] = strconv.FormatInt(int64(t), 10)
			default:
				fields[j] = fmt.Sprint(t)
			}
		}
		lines = append(lines, strings.Join(fields, ","))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
}

// clientCall performs one line-protocol request, decoding the typed error
// envelope on non-2xx statuses.
func clientCall(method, url string, body io.Reader) ([]byte, error) {
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		var pe struct {
			Error string `json:"error"`
			Kind  string `json:"kind"`
		}
		if json.Unmarshal(raw, &pe) == nil && pe.Error != "" {
			if pe.Kind != "" {
				return nil, fmt.Errorf("%s [%s, http %d]", pe.Error, pe.Kind, resp.StatusCode)
			}
			return nil, fmt.Errorf("%s [http %d]", pe.Error, resp.StatusCode)
		}
		return nil, fmt.Errorf("http %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	return raw, nil
}

// govOpts carries the governor flags (-timeout, -max-rows, -mem-limit,
// -degrade) into every auto-engine evaluation path.
var govOpts pyquery.Options

// fatal renders the error and exits. Typed governor failures get a
// structured line — which limit tripped, in which engine, at which step,
// and the charged totals — instead of the raw error string.
func fatal(err error) {
	var le *pyquery.LimitError
	if errors.As(err, &le) {
		var what string
		switch {
		case errors.Is(err, pyquery.ErrRowLimit):
			what = fmt.Sprintf("row limit exceeded (%d rows materialized, limit %d)", le.Rows, le.Limit)
		case errors.Is(err, pyquery.ErrMemoryLimit):
			what = fmt.Sprintf("memory limit exceeded (~%d bytes materialized, limit %d)", le.Bytes, le.Limit)
		case errors.Is(err, pyquery.ErrTimeout):
			what = "timed out"
		case errors.Is(err, pyquery.ErrCanceled):
			what = "canceled"
		default:
			what = le.Kind.Error()
		}
		fmt.Fprintf(os.Stderr, "qeval: query aborted: %s [engine=%s, step=%s]\n", what, le.Engine, le.Step)
		os.Exit(1)
	}
	var ie *pyquery.InternalError
	if errors.As(err, &ie) {
		fmt.Fprintf(os.Stderr, "qeval: internal error in %s engine: %v\n", ie.Engine, ie.Value)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "qeval:", err)
	os.Exit(1)
}
