// Command qserved serves queries over HTTP: a long-running process
// wrapping a shared database and a named prepared-statement registry,
// with admission control and same-statement request batching
// (internal/server). Statements are registered once — paying the
// query-dependent planning cost up front — and then executed by name, so
// per-request work is data complexity only.
//
//	qserved -addr :8080 -rel E=edges.csv
//
//	curl -X PUT localhost:8080/stmt/tri \
//	     -d '{"query": "T(x,y,z) :- E(x,y), E(y,z), E(x,z)."}'
//	curl -X POST localhost:8080/stmt/tri/exec -d '{}'
//	curl -X POST localhost:8080/rel/E/insert -d '{"rows": [[1, 7]]}'
//	curl -X POST localhost:8080/stmt/tri/refresh -d ''
//	curl localhost:8080/stats
//
// SIGTERM/SIGINT drain gracefully: new requests are rejected, in-flight
// ones finish (bounded by -drain-wait), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pyquery/internal/server"
)

type relFlags []string

func (r *relFlags) String() string { return strings.Join(*r, ",") }
func (r *relFlags) Set(s string) error {
	*r = append(*r, s)
	return nil
}

func main() {
	var rels relFlags
	addr := flag.String("addr", "127.0.0.1:7347", "listen address")
	par := flag.Int("par", 0, "per-execution parallelism (0 = GOMAXPROCS, 1 = serial)")
	inflight := flag.Int("inflight", 0, "max concurrently running executions (0 = worker budget)")
	queueDepth := flag.Int("queue-depth", 0, "max requests queued for a slot (0 = 4x inflight, -1 = no queue)")
	queueWait := flag.Duration("queue-wait", 0, "max time a request queues before typed overload rejection (0 = 100ms)")
	batchWindow := flag.Duration("batch-window", 0, "coalescing window for identical requests (0 = 200us)")
	noBatch := flag.Bool("no-batch", false, "disable same-statement request batching")
	timeout := flag.Duration("timeout", 0, "per-execution governor timeout (0 = none)")
	maxRows := flag.Int64("max-rows", 0, "per-execution row limit (0 = none)")
	memLimit := flag.Int64("mem-limit", 0, "per-execution memory limit in bytes (0 = none)")
	drainWait := flag.Duration("drain-wait", 10*time.Second, "max time to wait for in-flight requests on shutdown")
	flag.Var(&rels, "rel", "NAME=FILE.csv loaded at startup (repeatable)")
	flag.Parse()

	srv := server.New(nil, server.Config{
		Parallelism: *par,
		MaxInflight: *inflight,
		QueueDepth:  *queueDepth,
		QueueWait:   *queueWait,
		BatchWindow: *batchWindow,
		NoBatch:     *noBatch,
		Timeout:     *timeout,
		MaxRows:     *maxRows,
		MemoryLimit: *memLimit,
	})
	for _, spec := range rels {
		parts := strings.SplitN(spec, "=", 2)
		if len(parts) != 2 {
			fatal(fmt.Errorf("bad -rel %q (want NAME=FILE)", spec))
		}
		f, err := os.Open(parts[1])
		if err != nil {
			fatal(err)
		}
		err = srv.LoadCSV(parts[0], f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "qserved: listening on %s\n", *addr)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	// Drain: stop accepting, let in-flight requests finish, then close the
	// listener. The server rejects new work with 503 the moment Shutdown
	// is called, so the HTTP shutdown below only waits for stragglers.
	fmt.Fprintln(os.Stderr, "qserved: draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	drainErr := srv.Shutdown(dctx)
	if err := hs.Shutdown(dctx); err != nil && drainErr == nil {
		drainErr = err
	}
	if drainErr != nil && !errors.Is(drainErr, context.Canceled) {
		fmt.Fprintf(os.Stderr, "qserved: drain incomplete: %v\n", drainErr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "qserved: drained")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qserved:", err)
	os.Exit(1)
}
