// Command wsat solves weighted satisfiability — the W-hierarchy's defining
// problem family. Input is a DIMACS-like format on stdin or a file:
//
//	p wcnf 4 2
//	1 -2 0
//	3 4 0
//
// declares 4 variables, target weight 2 (exactly two variables true), and
// clauses terminated by 0 (positive literal i means variable i, 1-based).
// The solver is the exact DPLL engine from internal/cnf.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"pyquery/internal/cnf"
)

func main() {
	file := flag.String("f", "", "input file (default stdin)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	formula, k, err := parse(r)
	if err != nil {
		fatal(err)
	}
	assign, ok := formula.WeightedSatisfiable(k)
	if !ok {
		fmt.Printf("UNSAT at weight %d (%d vars, %d clauses)\n", k, formula.NumVars, len(formula.Clauses))
		os.Exit(1)
	}
	fmt.Printf("SAT at weight %d; true variables:", k)
	for v, b := range assign {
		if b {
			fmt.Printf(" %d", v+1)
		}
	}
	fmt.Println()
}

func parse(r io.Reader) (*cnf.Formula, int, error) {
	sc := bufio.NewScanner(r)
	var formula *cnf.Formula
	k := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "p" {
			if len(fields) != 4 || fields[1] != "wcnf" {
				return nil, 0, fmt.Errorf("wsat: bad header %q (want 'p wcnf <vars> <k>')", line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, 0, err
			}
			k, err = strconv.Atoi(fields[3])
			if err != nil {
				return nil, 0, err
			}
			formula = cnf.New(n)
			continue
		}
		if formula == nil {
			return nil, 0, fmt.Errorf("wsat: clause before header")
		}
		var clause []cnf.Lit
		for _, f := range fields {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, 0, fmt.Errorf("wsat: bad literal %q", f)
			}
			if v == 0 {
				break
			}
			if v > 0 {
				clause = append(clause, cnf.PosLit(v-1))
			} else {
				clause = append(clause, cnf.NegLit(-v-1))
			}
		}
		if len(clause) > 0 {
			formula.AddClause(clause...)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	if formula == nil {
		return nil, 0, fmt.Errorf("wsat: missing 'p wcnf' header")
	}
	return formula, k, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wsat:", err)
	os.Exit(2)
}
