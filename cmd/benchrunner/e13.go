package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"pyquery"
	"pyquery/internal/bench"
	"pyquery/internal/server"
	"pyquery/internal/workload"
)

// runE13 measures the service-layer claim (PR 10): a long-running qserved
// process sustains a mixed workload of cheap parameterized point lookups
// and heavier analytic statements over the real line protocol, with tail
// latency bounded by admission control; and single-flight batching turns a
// hot-key flood — many concurrent clients executing the same statement with
// the same bindings — into one frozen-plan execution per window. Part A
// drives HTTP clients against a live listener and reports per-class QPS,
// p50, and p99. Part B is the batching A/B on the in-process exec path
// (protocol costs ablated away): the acceptance bar is batched ≥1.5x the
// per-request arm on the point-lookup flood.
func runE13(w io.Writer, quick bool) {
	nodes, deg := 300, 14
	dur := 2 * time.Second
	clients := 24
	floodReqs := 100
	if quick {
		nodes, deg = 150, 10
		dur = 400 * time.Millisecond
		clients = 12
		floodReqs = 40
	}
	db := workload.GraphDB(nodes, nodes*deg, 131)

	const lookupSrc = "Q(y) :- E($src, x), E(x, y)."
	const hopSrc = "Q(x, z) :- E(x, y), E(y, z)."
	// The flood statement anchors a deeper neighborhood walk on one key, so
	// a single execution costs on the order of the batch window — the regime
	// where collapsing duplicates pays.
	const floodSrc = "Q(w) :- E($src, x), E(x, y), E(y, z), E(z, w)."

	// --- Part A: sustained mixed load over HTTP -------------------------
	s := server.New(db, server.Config{QueueDepth: 4 * clients, QueueWait: time.Second})
	if _, err := s.Register("adj", lookupSrc); err != nil {
		panic(err)
	}
	if _, err := s.Register("hop", hopSrc); err != nil {
		panic(err)
	}
	ts := httptest.NewServer(s.Handler())

	type class struct {
		mu   sync.Mutex
		lats []time.Duration
	}
	var lookup, analytic class
	record := func(c *class, d time.Duration) {
		c.mu.Lock()
		c.lats = append(c.lats, d)
		c.mu.Unlock()
	}
	exec := func(cl *http.Client, name, body string) error {
		resp, err := cl.Post(ts.URL+"/stmt/"+name+"/exec", "application/json",
			bytes.NewReader([]byte(body)))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("E13: %s exec: status %d", name, resp.StatusCode)
		}
		return nil
	}

	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + c)))
			cl := &http.Client{}
			for time.Now().Before(deadline) {
				t0 := time.Now()
				// 4:1 point lookups to analytic scans.
				if rng.Intn(5) != 0 {
					body := fmt.Sprintf(`{"params": {"src": %d}}`, rng.Intn(nodes))
					if err := exec(cl, "adj", body); err != nil {
						errc <- err
						return
					}
					record(&lookup, time.Since(t0))
				} else {
					if err := exec(cl, "hop", "{}"); err != nil {
						errc <- err
						return
					}
					record(&analytic, time.Since(t0))
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		panic(err)
	}
	ts.Close()
	stats := s.Stats()
	if err := s.Shutdown(context.Background()); err != nil {
		panic(err)
	}

	pct := func(lats []time.Duration, p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	row := func(label string, c *class) []string {
		qps := float64(len(c.lats)) / dur.Seconds()
		return []string{label, fmt.Sprintf("%d", len(c.lats)),
			fmt.Sprintf("%.0f", qps),
			pct(c.lats, 0.50).String(), pct(c.lats, 0.99).String()}
	}
	fmt.Fprint(w, bench.Table([]string{"request class", "requests", "QPS", "p50", "p99"},
		[][]string{
			row("point lookup "+lookupSrc, &lookup),
			row("analytic "+hopSrc, &analytic),
		}))
	fmt.Fprintf(w, "(%d closed-loop HTTP clients for %v against a live listener; %d admission\n",
		clients, dur, stats.Overloads)
	fmt.Fprintln(w, "overloads. Each request pays JSON decode, symbol interning, admission, a")
	fmt.Fprintln(w, "frozen-plan execution, and row rendering)")
	fmt.Fprintln(w)

	// --- Part B: batching A/B on a hot-key flood ------------------------
	// Same statement, same binding, many concurrent clients — the coalescing
	// case. The batched arm admits one leader per window; the per-request arm
	// pays one admission and one execution per client request. In-process
	// exec path so the ratio isolates batching, not HTTP parsing.
	flood := func(window time.Duration, noBatch bool) (float64, int64) {
		fs := server.New(db, server.Config{
			Parallelism: 1, MaxInflight: 1,
			BatchWindow: window, NoBatch: noBatch,
			QueueDepth: 4 * clients, QueueWait: 30 * time.Second,
		})
		if _, err := fs.Register("hot", floodSrc); err != nil {
			panic(err)
		}
		params := map[string]pyquery.Value{"src": 7}
		var fwg sync.WaitGroup
		t0 := time.Now()
		for c := 0; c < clients; c++ {
			fwg.Add(1)
			go func() {
				defer fwg.Done()
				for i := 0; i < floodReqs; i++ {
					if _, _, err := fs.Exec(context.Background(), "hot", params, server.ExecOpts{}); err != nil {
						panic(fmt.Sprintf("E13 flood: %v", err))
					}
				}
			}()
		}
		fwg.Wait()
		elapsed := time.Since(t0)
		batched := fs.Stats().Stmts["hot"].Batched
		if err := fs.Shutdown(context.Background()); err != nil {
			panic(err)
		}
		return float64(clients*floodReqs) / elapsed.Seconds(), batched
	}
	qpsBatched, coalesced := flood(200*time.Microsecond, false)
	qpsDirect, _ := flood(0, true)

	total := clients * floodReqs
	fmt.Fprint(w, bench.Table([]string{"arm", "requests", "QPS", "coalesced"},
		[][]string{
			{"per-request (no batching)", fmt.Sprintf("%d", total), fmt.Sprintf("%.0f", qpsDirect), "0"},
			{"batched (200µs window)", fmt.Sprintf("%d", total), fmt.Sprintf("%.0f", qpsBatched), fmt.Sprintf("%d", coalesced)},
		}))
	fmt.Fprintf(w, "(hot-key flood: %d clients × %d identical anchored lookups %s,\n",
		clients, floodReqs, floodSrc)
	fmt.Fprintln(w, "in-process exec path, single-worker server — the contended regime.")
	fmt.Fprintf(w, "Batching speedup: %.2fx — the acceptance bar is ≥1.5x: same-\n",
		qpsBatched/qpsDirect)
	fmt.Fprintln(w, "fingerprint requests inside one window share a single frozen-plan execution)")
}
