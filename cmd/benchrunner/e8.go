package main

import (
	"fmt"
	"io"
	"time"

	"pyquery"
	"pyquery/internal/bench"
	"pyquery/internal/relation"
	"pyquery/internal/workload"
)

// runE8 measures the decomposition engine's routing class: cyclic queries
// of generalized hypertree width ≤ 3 (n-cycles and theta joins,
// workload.CyclicLowWidth). The backtracker enumerates ≈|E|·d^(q−2)
// partial assignments while bag materialization stays ≈|E|·d per width-2
// bag, so the gap widens with both density d and cycle length — the
// asymptotic win the bounded-width literature promises beyond the paper's
// acyclic frontier.
func runE8(w io.Writer, quick bool) {
	specs := []workload.CyclicLowWidthSpec{
		{CycleLen: 4, Nodes: 150, Degree: 15, Seed: 81},
		{CycleLen: 4, Nodes: 300, Degree: 30, Seed: 81},
		{CycleLen: 6, Nodes: 100, Degree: 8, Seed: 82},
		{Paths: 3, PathLen: 2, Nodes: 300, Degree: 25, Seed: 83},
	}
	if quick {
		specs = []workload.CyclicLowWidthSpec{
			{CycleLen: 4, Nodes: 120, Degree: 12, Seed: 81},
			{CycleLen: 6, Nodes: 60, Degree: 6, Seed: 82},
			{Paths: 3, PathLen: 2, Nodes: 150, Degree: 12, Seed: 83},
		}
	}
	var rows [][]string
	for _, spec := range specs {
		q, db := workload.CyclicLowWidth(spec)
		label := fmt.Sprintf("%d-cycle", spec.CycleLen)
		if spec.CycleLen == 0 {
			label = fmt.Sprintf("theta %dx%d", spec.Paths, spec.PathLen)
		}
		r, err := pyquery.PlanDB(q, db)
		if err != nil {
			panic(err)
		}
		if r.Engine != pyquery.EngineDecomp {
			panic(fmt.Sprintf("E8 %s: routed to %v, want decomp", label, r.Engine))
		}
		var want, got *relation.Relation
		tDecomp := bench.Seconds(50*time.Millisecond, func() {
			var err error
			got, err = pyquery.EvaluateOpts(q, db, pyquery.Options{Parallelism: 1})
			if err != nil {
				panic(err)
			}
		})
		tGen := bench.Seconds(50*time.Millisecond, func() {
			var err error
			want, err = pyquery.EvaluateOpts(q, db, pyquery.Options{Parallelism: 1, NoDecomp: true})
			if err != nil {
				panic(err)
			}
		})
		if !relation.EqualSet(got, want) {
			panic("E8: decomposition changed the answer")
		}
		rows = append(rows, []string{
			label, fmt.Sprintf("%d", db.Size()), fmt.Sprintf("%d", r.Width),
			fmt.Sprintf("%d", len(r.Bags)), fmt.Sprintf("%d", want.Len()),
			bench.FmtSeconds(tDecomp), bench.FmtSeconds(tGen), bench.FmtFloat(tGen / tDecomp),
		})
	}
	fmt.Fprint(w, bench.Table([]string{"query", "|db|", "width", "bags", "|out|",
		"decomp", "backtracker", "speedup"}, rows))
	fmt.Fprintln(w, "(identical answers; the gap widens with density and cycle length —")
	fmt.Fprintln(w, "bag joins are n^width while the backtracker's exponent grows with q)")
}

// runA6 ablates the decomposition routing on the acceptance workload: the
// dense 4-cycle join, decomposition engine vs Options.NoDecomp (the same
// query through the n^O(q) backtracker). The 6-cycle row shows the gap
// growing with the cycle exponent.
func runA6(w io.Writer, quick bool) {
	specs := []workload.CyclicLowWidthSpec{
		{CycleLen: 4, Nodes: 300, Degree: 30, Seed: 61},
		{CycleLen: 6, Nodes: 100, Degree: 8, Seed: 62},
	}
	if quick {
		specs = []workload.CyclicLowWidthSpec{
			{CycleLen: 4, Nodes: 150, Degree: 18, Seed: 61},
			{CycleLen: 6, Nodes: 60, Degree: 6, Seed: 62},
		}
	}
	var rows [][]string
	for _, spec := range specs {
		q, db := workload.CyclicLowWidth(spec)
		want, err := pyquery.EvaluateOpts(q, db, pyquery.Options{Parallelism: 1, NoDecomp: true})
		if err != nil {
			panic(err)
		}
		got, err := pyquery.EvaluateOpts(q, db, pyquery.Options{Parallelism: 1})
		if err != nil || !relation.EqualSet(got, want) {
			panic("A6: decomposition ablation changed the answer")
		}
		tOn := bench.Seconds(50*time.Millisecond, func() {
			if _, err := pyquery.EvaluateOpts(q, db, pyquery.Options{Parallelism: 1}); err != nil {
				panic(err)
			}
		})
		tOff := bench.Seconds(50*time.Millisecond, func() {
			if _, err := pyquery.EvaluateOpts(q, db, pyquery.Options{Parallelism: 1, NoDecomp: true}); err != nil {
				panic(err)
			}
		})
		rows = append(rows, []string{
			fmt.Sprintf("%d-cycle", spec.CycleLen), fmt.Sprintf("%d", want.Len()),
			bench.FmtSeconds(tOn), bench.FmtSeconds(tOff), bench.FmtFloat(tOff / tOn),
		})
	}
	fmt.Fprint(w, bench.Table([]string{"query", "|out|", "decomp", "NoDecomp (backtracker)", "speedup"}, rows))
	fmt.Fprintln(w, "(identical answers; the acceptance bar is ≥2x on the 4-cycle)")
}
