package main

import (
	"fmt"
	"io"
	"math"
	"time"

	"pyquery/internal/bench"
	"pyquery/internal/core"
	"pyquery/internal/eval"
	"pyquery/internal/query"
	"pyquery/internal/relation"
	"pyquery/internal/workload"
	"pyquery/internal/yannakakis"
)

// runA1 ablates the I₂ pushdown: the paper pushes same-hyperedge
// inequalities into the σ selections; the ablation routes every inequality
// through hashed color columns instead (the q-parameter variant), paying
// weaker filters and a possibly larger hash range.
func runA1(w io.Writer, quick bool) {
	width := 30
	if quick {
		width = 15
	}
	db := workload.LayeredPathDB(8, width, 3, 31)
	var rows [][]string
	for _, k := range []int{3, 4} {
		q := workload.SimplePathQuery(k)
		_, sOn, err := core.EvaluateBoolStats(q, db, core.Options{Parallelism: 1})
		if err != nil {
			panic(err)
		}
		tOn := bench.Seconds(20*time.Millisecond, func() {
			if _, err := core.EvaluateBoolOpts(q, db, serialCore); err != nil {
				panic(err)
			}
		})
		_, sOff, err := core.EvaluateBoolStats(q, db, core.Options{Parallelism: 1, NoPushdown: true})
		if err != nil {
			panic(err)
		}
		tOff := bench.Seconds(20*time.Millisecond, func() {
			if _, err := core.EvaluateBoolOpts(q, db, core.Options{Parallelism: 1, NoPushdown: true}); err != nil {
				panic(err)
			}
		})
		rows = append(rows, []string{
			fmt.Sprintf("simple %d-path", k),
			fmt.Sprintf("%d/%d", sOn.I1, sOn.I2), bench.FmtSeconds(tOn),
			fmt.Sprintf("%d/%d", sOff.I1, sOff.I2), bench.FmtSeconds(tOff),
			bench.FmtFloat(tOff / tOn),
		})
	}
	fmt.Fprint(w, bench.Table([]string{"query",
		"I1/I2 (pushdown)", "time", "I1/I2 (all hashed)", "time", "slowdown"}, rows))
	fmt.Fprintln(w, "(answers identical; the pushdown keeps adjacent-pair checks exact and filters early)")
}

// runA2 ablates the Yannakakis full reducer on the classical bad case: the
// root joins a multiplying child before a selective child. With the
// reducer, the selective branch shrinks the root by semijoin before any
// multiplication; without it, the root inflates by the fan-out first and
// the dead tuples are discarded only afterwards.
func runA2(w io.Writer, quick bool) {
	m, fanOut := 250, 40
	if quick {
		m, fanOut = 120, 20
	}
	db := query.NewDB()
	// Root  R(x1,x2): the m×m core.
	r := query.NewTable(2)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			r.Append(relation.Value(i), relation.Value(j))
		}
	}
	db.Set("R", r)
	// Mul M(x1,x0): fanOut values of x0 per x1 — the multiplier branch.
	mul := query.NewTable(2)
	for i := 0; i < m; i++ {
		for a := 0; a < fanOut; a++ {
			mul.Append(relation.Value(i), relation.Value(10_000+a))
		}
	}
	db.Set("M", mul)
	// Sel S(x2,x3): only x2 = 0 survives — the selective branch.
	sel := query.NewTable(2)
	sel.Append(relation.Value(0), relation.Value(99_999))
	db.Set("S", sel)

	q := &query.CQ{
		Head: []query.Term{query.V(0)},
		Atoms: []query.Atom{
			query.NewAtom("R", query.V(1), query.V(2)),
			query.NewAtom("M", query.V(1), query.V(0)),
			query.NewAtom("S", query.V(2), query.V(3)),
		},
	}
	want, err := yannakakis.EvaluateOpts(q, db, serialYan)
	if err != nil {
		panic(err)
	}
	got, err := yannakakis.EvaluateOpts(q, db, yannakakis.Options{Parallelism: 1, NoFullReducer: true})
	if err != nil || !relation.EqualSet(got, want) {
		panic("full reducer ablation changed the answer")
	}
	tOn := bench.Seconds(20*time.Millisecond, func() {
		if _, err := yannakakis.EvaluateOpts(q, db, serialYan); err != nil {
			panic(err)
		}
	})
	tOff := bench.Seconds(20*time.Millisecond, func() {
		if _, err := yannakakis.EvaluateOpts(q, db, yannakakis.Options{Parallelism: 1, NoFullReducer: true}); err != nil {
			panic(err)
		}
	})
	fmt.Fprint(w, bench.Table([]string{"variant", "time"}, [][]string{
		{"full reducer (paper)", bench.FmtSeconds(tOn)},
		{"no reducer", bench.FmtSeconds(tOff)},
		{"slowdown", bench.FmtFloat(tOff / tOn)},
	}))
	fmt.Fprintf(w, "(identical answers, |output| = %d; the reducer realizes the input+output\n", want.Len())
	fmt.Fprintln(w, "polynomial bound of [18] by deleting dangling tuples before any join)")
}

// runA3 ablates the generic evaluator's greedy join order on a query
// written in adversarial atom order (selective atom last).
func runA3(w io.Writer, quick bool) {
	nodes, edges := 3000, 12000
	if quick {
		nodes, edges = 800, 3200
	}
	db := workload.GraphDB(nodes, edges, 33)
	// L holds just two nodes; written last, it should be evaluated first.
	l := query.NewTable(1)
	l.Append(relation.Value(1))
	l.Append(relation.Value(2))
	db.Set("L", l)
	// Head variables force full evaluation (no early exit), so the written
	// order pays for scanning every edge before the selective L applies.
	q := &query.CQ{
		Head: []query.Term{query.V(0), query.V(2)},
		Atoms: []query.Atom{
			query.NewAtom("E", query.V(0), query.V(1)),
			query.NewAtom("E", query.V(1), query.V(2)),
			query.NewAtom("L", query.V(0)),
		},
	}
	tOn := bench.Seconds(20*time.Millisecond, func() {
		if _, err := eval.ConjunctiveOpts(q, db, eval.Options{Parallelism: 1}); err != nil {
			panic(err)
		}
	})
	tOff := bench.Seconds(20*time.Millisecond, func() {
		if _, err := eval.ConjunctiveOpts(q, db, eval.Options{Parallelism: 1, NoReorder: true}); err != nil {
			panic(err)
		}
	})
	fmt.Fprint(w, bench.Table([]string{"variant", "time"}, [][]string{
		{"greedy order", bench.FmtSeconds(tOn)},
		{"written order", bench.FmtSeconds(tOff)},
		{"slowdown", bench.FmtFloat(tOff / tOn)},
	}))
}

// runA5 ablates the cost-based planner: the stats-driven join order
// (internal/plan, estimated intermediate cardinalities from cached column
// statistics) against the legacy greedy heuristic (fewest unbound
// variables, ties by raw size). The workload is the legacy heuristic's
// failure mode — fan-out blindness: after Start and FanA bind (s,a), both
// FanB(s,b) and Sel(a,b) have one unbound variable, and the tie-break picks
// the smaller FanB even though it multiplies every partial assignment by
// the fan-out, while the planner's selectivity model sees that Sel keeps
// the intermediate flat and schedules it first.
func runA5(w io.Writer, quick bool) {
	groups, fan := 300, 40
	if quick {
		groups, fan = 120, 25
	}
	db, q := workload.PlannerTrap(groups, fan)
	want, err := eval.ConjunctiveOpts(q, db, eval.Options{Parallelism: 1, LegacyGreedy: true})
	if err != nil {
		panic(err)
	}
	got, err := eval.ConjunctiveOpts(q, db, eval.Options{Parallelism: 1})
	if err != nil || !relation.EqualSet(got, want) {
		panic("planner ablation changed the answer")
	}
	tStats := bench.Seconds(20*time.Millisecond, func() {
		if _, err := eval.ConjunctiveOpts(q, db, eval.Options{Parallelism: 1}); err != nil {
			panic(err)
		}
	})
	tLegacy := bench.Seconds(20*time.Millisecond, func() {
		if _, err := eval.ConjunctiveOpts(q, db, eval.Options{Parallelism: 1, LegacyGreedy: true}); err != nil {
			panic(err)
		}
	})
	fmt.Fprint(w, bench.Table([]string{"variant", "time"}, [][]string{
		{"stats-driven order (planner)", bench.FmtSeconds(tStats)},
		{"legacy greedy order", bench.FmtSeconds(tLegacy)},
		{"slowdown", bench.FmtFloat(tLegacy / tStats)},
	}))
	fmt.Fprintf(w, "(identical answers, |output| = %d; the legacy order enumerates ~%d\n",
		want.Len(), groups*fan*fan)
	fmt.Fprintln(w, "partial assignments through the second fan-out before Sel prunes them)")
}

// runA4 sweeps the Monte-Carlo confidence c and compares the measured
// success rate to the paper's 1−e^{−c} guarantee. The instance is the
// hardest satisfiable one — a star with exactly four leaves and the
// 4-leaf star query, so the unique witness set must be colored injectively
// (per-trial success 4!/4⁴ ≈ 0.094).
func runA4(w io.Writer, quick bool) {
	q := workload.StarQuery(4)
	db := query.NewDB()
	e := query.NewTable(2)
	for leaf := 1; leaf <= 4; leaf++ {
		e.Append(0, relation.Value(leaf))
	}
	db.Set("E", e)
	exact, err := core.EvaluateOpts(q, db, core.Options{Parallelism: 1, Strategy: core.Exact})
	if err != nil {
		panic(err)
	}
	if exact.Empty() {
		panic("A4 instance should have answers")
	}
	runs := 300
	if quick {
		runs = 80
	}
	var rows [][]string
	for _, c := range []float64{0.05, 0.1, 0.25, 1, 3} {
		succ := 0
		for i := 0; i < runs; i++ {
			got, err := core.EvaluateBoolOpts(q, db,
				core.Options{Parallelism: 1, Strategy: core.MonteCarlo, C: c, Seed: int64(500 + i)})
			if err != nil {
				panic(err)
			}
			if got {
				succ++
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", c),
			fmt.Sprintf("%.3f", float64(succ)/float64(runs)),
			fmt.Sprintf("%.3f", 1-math.Exp(-c)),
		})
	}
	fmt.Fprint(w, bench.Table([]string{"c", "measured success", "paper bound 1-e^-c"}, rows))
	fmt.Fprintln(w, "(measured ≥ bound: the paper's analysis is conservative — the true")
	fmt.Fprintln(w, "per-trial success l!/l^k usually beats e^-k)")
}
