package main

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"pyquery/internal/bench"
	"pyquery/internal/core"
	"pyquery/internal/datalog"
	"pyquery/internal/eval"
	"pyquery/internal/reductions"
	"pyquery/internal/relation"
	"pyquery/internal/workload"
	"pyquery/internal/yannakakis"
)

// Serial pins for the legacy experiments: E1–E7 and A1–A4 measure the
// serial engines so their numbers stay comparable with the BENCH_1 capture
// and across hosts with different core counts; the PAR experiment owns the
// scaling measurements.
var (
	serialEval = eval.Options{Parallelism: 1}
	serialCore = core.Options{Parallelism: 1}
	serialYan  = yannakakis.Options{Parallelism: 1}
)

// runPAR sweeps the Parallelism option across every engine and the
// partitioned relational kernel, reporting wall time per level and the
// speedup over the serial path (p=1). The sweep is the scaling curve the
// BENCH_N.json captures track; on a single-core host the curve is flat by
// construction (there is nothing to scale onto) and the sweep then mostly
// measures partitioning overhead.
func runPAR(w io.Writer, quick bool) {
	fmt.Fprintf(w, "GOMAXPROCS=%d NumCPU=%d\n\n", runtime.GOMAXPROCS(0), runtime.NumCPU())
	levels := []int{1, 2, 4, 8}
	minDur := 200 * time.Millisecond
	if quick {
		levels = []int{1, 2, 4}
		minDur = 30 * time.Millisecond
	}

	// Workloads, one per layer: the raw partitioned join kernel, the
	// generic backtracker (E1 clique), Yannakakis (path query), the
	// Theorem 2 color-coding engine (org chart), and Datalog (Vardi k=2).
	joinN := 60000
	orgN, vardiN := 2000, 16
	if quick {
		joinN = 20000
		orgN = 1000
	}
	lhs := relation.New(relation.Schema{0, 1})
	rhs := relation.New(relation.Schema{1, 2})
	for i := 0; i < joinN; i++ {
		lhs.Append(relation.Value(i%500), relation.Value(i%1000))
		rhs.Append(relation.Value(i%1000), relation.Value(i%250))
	}
	cliqueQ, cliqueDB := reductions.CliqueToCQ(turan(24, 3), 4)
	pathDB := workload.LayeredPathDB(8, 60, 3, 35)
	pathQ := workload.PathQuery(5)
	orgDB := workload.OrgChart(orgN, 50, 3, 11)
	orgQ := workload.MultiProjectQuery()
	vardi := datalog.VardiFamily(2)
	vardiDB := workload.CompleteDigraphDB(vardiN)

	type target struct {
		name string
		run  func(p int)
	}
	targets := []target{
		{"relation.NaturalJoinPar", func(p int) { relation.NaturalJoinPar(lhs, rhs, p) }},
		{"generic E1 4-clique", func(p int) {
			if ok, err := eval.ConjunctiveBoolOpts(cliqueQ, cliqueDB, eval.Options{Parallelism: p}); err != nil || ok {
				panic("negative clique instance expected")
			}
		}},
		{"yannakakis path-5", func(p int) {
			if _, err := yannakakis.EvaluateOpts(pathQ, pathDB, yannakakis.Options{Parallelism: p}); err != nil {
				panic(err)
			}
		}},
		{"core org-chart", func(p int) {
			if _, err := core.EvaluateOpts(orgQ, orgDB, core.Options{Parallelism: p}); err != nil {
				panic(err)
			}
		}},
		{"datalog vardi k=2", func(p int) {
			if _, _, err := datalog.EvalGoal(vardi, vardiDB, datalog.Options{Parallelism: p}); err != nil {
				panic(err)
			}
		}},
	}

	headers := []string{"workload"}
	for _, p := range levels {
		headers = append(headers, fmt.Sprintf("p=%d", p), "speedup")
	}
	var rows [][]string
	for _, tg := range targets {
		row := []string{tg.name}
		var base float64
		for _, p := range levels {
			secs := bench.Seconds(minDur, func() { tg.run(p) })
			if p == 1 {
				base = secs
			}
			row = append(row, bench.FmtSeconds(secs), fmt.Sprintf("%.2fx", base/secs))
		}
		rows = append(rows, row)
	}
	fmt.Fprint(w, bench.Table(headers, rows))
	fmt.Fprintln(w, "\nspeedup is serial-time / parallel-time at each level (p=1 ≡ 1.00x).")
}
