package main

import (
	"fmt"
	"io"
	"time"

	"pyquery"
	"pyquery/internal/bench"
	"pyquery/internal/eval"
	"pyquery/internal/relation"
	"pyquery/internal/wcoj"
	"pyquery/internal/workload"
)

// e10Specs are the dense cyclic workloads of E10/A7: triangle and K4 clique
// queries on skewed hub graphs. The hub vertex gives the backtracker a
// Θ(leaves²) dead-end sweep (every leaf pair shares the hub but almost no
// pair closes a cycle), while the leapfrog engine intersects sorted ranges
// in O(|E| log |E|) — the structural gap the AGM-vs-worst-case gate
// predicts.
func e10Specs(quick bool) []struct {
	label  string
	q      *pyquery.CQ
	leaves int
	clique int
} {
	specs := []struct {
		label  string
		q      *pyquery.CQ
		leaves int
		clique int
	}{
		{"triangle hub", workload.TriangleQuery(), 900, 8},
		{"triangle hub L", workload.TriangleQuery(), 1800, 8},
		{"K4 clique hub", workload.CliqueQuery(4), 900, 8},
		{"K4 clique hub L", workload.CliqueQuery(4), 1500, 8},
	}
	if quick {
		specs = specs[:0]
		specs = append(specs, struct {
			label  string
			q      *pyquery.CQ
			leaves int
			clique int
		}{"triangle hub", workload.TriangleQuery(), 400, 6})
		specs = append(specs, struct {
			label  string
			q      *pyquery.CQ
			leaves int
			clique int
		}{"K4 clique hub", workload.CliqueQuery(4), 400, 6})
	}
	return specs
}

// runE10 measures the worst-case-optimal engine's routing class: dense
// cyclic pure queries whose AGM bound beats the backtracker's skew-aware
// worst case. Both sides run one-shot at Parallelism 1 — planning plus
// execution — so the trie build is charged to the leapfrog engine.
func runE10(w io.Writer, quick bool) {
	var rows [][]string
	for _, spec := range e10Specs(quick) {
		db := workload.HubGraphDB(spec.leaves, spec.clique)
		r, err := pyquery.PlanDB(spec.q, db)
		if err != nil {
			panic(err)
		}
		if r.Engine != pyquery.EngineWCOJ {
			panic(fmt.Sprintf("E10 %s: routed to %v, want wcoj", spec.label, r.Engine))
		}
		var want, got *relation.Relation
		tWCOJ := bench.Seconds(50*time.Millisecond, func() {
			var err error
			got, err = wcoj.Evaluate(spec.q, db, 1)
			if err != nil {
				panic(err)
			}
		})
		tGen := bench.Seconds(50*time.Millisecond, func() {
			var err error
			want, err = eval.ConjunctiveOpts(spec.q, db, eval.Options{Parallelism: 1})
			if err != nil {
				panic(err)
			}
		})
		if !relation.EqualSet(got, want) {
			panic("E10: leapfrog triejoin changed the answer")
		}
		rows = append(rows, []string{
			spec.label, fmt.Sprintf("%d", db.Size()), fmt.Sprintf("%d", want.Len()),
			bench.FmtFloat(r.AGMCost), bench.FmtFloat(r.WorstCost),
			bench.FmtSeconds(tWCOJ), bench.FmtSeconds(tGen), bench.FmtFloat(tGen / tWCOJ),
		})
	}
	fmt.Fprint(w, bench.Table([]string{"query", "|db|", "|out|", "AGM", "worst-case",
		"wcoj", "backtracker", "speedup"}, rows))
	fmt.Fprintln(w, "(identical answers; the acceptance bar is ≥2x on the triangle and K4 rows —")
	fmt.Fprintln(w, "the hub's quadratic dead-end sweep is what the AGM gate prices out)")
}

// runA7 ablates the wcoj routing through the facade: the same hub-graph
// queries via EvaluateOpts, auto routing (EngineWCOJ) vs Options.NoWCOJ
// (the generic backtracker, since the decomposition gate already rejected).
// Both paths amortize planning through the prepared-statement cache, so the
// gap is pure execution.
func runA7(w io.Writer, quick bool) {
	var rows [][]string
	for _, spec := range e10Specs(quick) {
		db := workload.HubGraphDB(spec.leaves, spec.clique)
		want, err := pyquery.EvaluateOpts(spec.q, db, pyquery.Options{Parallelism: 1, NoWCOJ: true})
		if err != nil {
			panic(err)
		}
		got, err := pyquery.EvaluateOpts(spec.q, db, pyquery.Options{Parallelism: 1})
		if err != nil || !relation.EqualSet(got, want) {
			panic("A7: wcoj ablation changed the answer")
		}
		tOn := bench.Seconds(50*time.Millisecond, func() {
			if _, err := pyquery.EvaluateOpts(spec.q, db, pyquery.Options{Parallelism: 1}); err != nil {
				panic(err)
			}
		})
		tOff := bench.Seconds(50*time.Millisecond, func() {
			if _, err := pyquery.EvaluateOpts(spec.q, db, pyquery.Options{Parallelism: 1, NoWCOJ: true}); err != nil {
				panic(err)
			}
		})
		rows = append(rows, []string{
			spec.label, fmt.Sprintf("%d", want.Len()),
			bench.FmtSeconds(tOn), bench.FmtSeconds(tOff), bench.FmtFloat(tOff / tOn),
		})
	}
	fmt.Fprint(w, bench.Table([]string{"query", "|out|", "wcoj", "NoWCOJ (backtracker)", "speedup"}, rows))
	fmt.Fprintln(w, "(identical answers; NoWCOJ is ablation A7)")
}
