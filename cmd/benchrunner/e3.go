package main

import (
	"fmt"
	"io"
	"math"
	"time"

	"pyquery/internal/bench"
	"pyquery/internal/colorcoding"
	"pyquery/internal/core"
	"pyquery/internal/query"
	"pyquery/internal/relation"
	"pyquery/internal/workload"
)

// runE3 measures the Theorem 2 engine: (a) near-linear scaling in the
// database size at fixed k; (b) the k-dependence isolated in the constant;
// (c) the Monte-Carlo success-rate prediction 1−e^{−c}; (d) the three hash
// families on one instance.
func runE3(w io.Writer, quick bool) {
	// (a) time vs n at fixed k=2 on both Section 5 workloads.
	sizes := []int{2000, 4000, 8000, 16000}
	if quick {
		sizes = []int{500, 1000, 2000}
	}
	fmt.Fprintln(w, "(a) scaling with database size at fixed parameter (k=2):")
	var rows [][]string
	var orgSeries, regSeries bench.Series
	for _, n := range sizes {
		org := workload.OrgChart(n, 50, 3, 11)
		qOrg := workload.MultiProjectQuery()
		tOrg := bench.Seconds(20*time.Millisecond, func() {
			if _, err := core.EvaluateOpts(qOrg, org, serialCore); err != nil {
				panic(err)
			}
		})
		orgSeries.Add(float64(org.Size()), tOrg)

		reg := workload.Registrar(n, 80, 8, 3, 12)
		qReg := workload.OutsideDeptQuery()
		tReg := bench.Seconds(20*time.Millisecond, func() {
			if _, err := core.EvaluateOpts(qReg, reg, serialCore); err != nil {
				panic(err)
			}
		})
		regSeries.Add(float64(reg.Size()), tReg)
		rows = append(rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", org.Size()), bench.FmtSeconds(tOrg),
			fmt.Sprintf("%d", reg.Size()), bench.FmtSeconds(tReg),
		})
	}
	fmt.Fprint(w, bench.Table(
		[]string{"scale", "|org db|", "org-chart t", "|reg db|", "registrar t"}, rows))
	fmt.Fprintf(w, "log-log slope vs |db|: org-chart %s, registrar %s (paper: ≈1, n log n)\n\n",
		bench.FmtFloat(orgSeries.Slope()), bench.FmtFloat(regSeries.Slope()))

	// (b) time vs k at fixed n: simple-path queries, Monte-Carlo family.
	fmt.Fprintln(w, "(b) scaling with the parameter at fixed database (simple k-path):")
	db := workload.LayeredPathDB(10, 40, 3, 13)
	maxK := 6
	if quick {
		maxK = 5
	}
	var krows [][]string
	var kSeries bench.Series
	for k := 2; k <= maxK; k++ {
		q := workload.SimplePathQuery(k)
		_, stats, err := core.EvaluateBoolStats(q, db, core.Options{Parallelism: 1, Strategy: core.MonteCarlo, C: 2, Seed: 7})
		if err != nil {
			panic(err)
		}
		secs := bench.Seconds(20*time.Millisecond, func() {
			if _, err := core.EvaluateBoolOpts(q, db, serialCore); err != nil {
				panic(err)
			}
		})
		kSeries.Add(float64(k), secs)
		krows = append(krows, []string{
			fmt.Sprintf("%d", k), fmt.Sprintf("%d", stats.K),
			fmt.Sprintf("%d", stats.FamilySize), bench.FmtSeconds(secs),
		})
	}
	fmt.Fprint(w, bench.Table([]string{"path len", "hash range k", "family size", "time"}, krows))
	fmt.Fprintf(w, "per-step time growth ratio: %s (exponential in k only — the f(k) factor)\n\n",
		bench.FmtFloat(kSeries.GrowthRatio()))

	// (c) Monte-Carlo success probability vs the paper's bound, on the
	// hardest satisfiable instance: a single chain, so exactly one
	// satisfying instantiation exists and a hash succeeds only if it colors
	// those k specific values injectively (probability k!/k^k > e^-k).
	fmt.Fprintln(w, "(c) Monte-Carlo analysis on a single-witness instance (simple 3-path on a 4-chain):")
	q := workload.SimplePathQuery(3)
	small := chainDB(4)
	exact, err := core.EvaluateBoolOpts(q, small, core.Options{Parallelism: 1, Strategy: core.Exact})
	if err != nil || !exact {
		panic(fmt.Sprintf("instance should be satisfiable: %v %v", exact, err))
	}
	_, _, v1, _ := core.Partition(q)
	k := len(v1)
	trials := 3000
	runs := 300
	if quick {
		trials, runs = 600, 80
	}
	hit := 0
	for i := 0; i < trials; i++ {
		h := colorcoding.Seeded(k, int64(i))
		ok, err := core.RunSingleHash(q, small, h)
		if err != nil {
			panic(err)
		}
		if ok {
			hit++
		}
	}
	singleRate := float64(hit) / float64(trials)
	fmt.Fprintf(w, "single-hash success rate: %.3f (paper lower bound e^-k = %.3f, k=%d)\n",
		singleRate, math.Exp(-float64(k)), k)
	for _, c := range []float64{0.5, 1, 2} {
		succ := 0
		for i := 0; i < runs; i++ {
			ok, err := core.EvaluateBoolOpts(q, small,
				core.Options{Parallelism: 1, Strategy: core.MonteCarlo, C: c, Seed: int64(1000 + i)})
			if err != nil {
				panic(err)
			}
			if ok {
				succ++
			}
		}
		fmt.Fprintf(w, "full run success rate at c=%.1f: %.3f (paper bound ≥ 1-e^-c = %.3f)\n",
			c, float64(succ)/float64(runs), 1-math.Exp(-c))
	}
	fmt.Fprintln(w)

	// (d) the three hash families on one mid-size instance.
	fmt.Fprintln(w, "(d) hash family comparison (registrar query, k=2):")
	reg := workload.Registrar(4000, 60, 8, 3, 15)
	qr := workload.OutsideDeptQuery()
	var frows [][]string
	var exactAnswer *relation.Relation
	for _, st := range []struct {
		name string
		opts core.Options
	}{
		{"exact perfect", core.Options{Parallelism: 1, Strategy: core.Exact}},
		{"whp perfect", core.Options{Parallelism: 1, Strategy: core.WHP, Seed: 5}},
		{"monte carlo c=3", core.Options{Parallelism: 1, Strategy: core.MonteCarlo, C: 3, Seed: 5}},
	} {
		var stats core.Stats
		var res *relation.Relation
		secs := bench.Seconds(20*time.Millisecond, func() {
			var err error
			res, stats, err = core.EvaluateStats(qr, reg, st.opts)
			if err != nil {
				panic(err)
			}
		})
		match := "—"
		if exactAnswer == nil {
			exactAnswer = res
		} else if relation.EqualSet(res, exactAnswer) {
			match = "matches exact"
		} else {
			match = "DIFFERS"
		}
		frows = append(frows, []string{st.name, fmt.Sprintf("%d", stats.FamilySize),
			fmt.Sprintf("%d", res.Len()), bench.FmtSeconds(secs), match})
	}
	fmt.Fprint(w, bench.Table([]string{"family", "size", "|answer|", "time", "answer"}, frows))
}

// chainDB is the directed chain 0→1→…→(n−1): exactly one simple
// (n−1)-path, the adversarial case for color-coding success rates.
func chainDB(n int) *query.DB {
	db := query.NewDB()
	e := query.NewTable(2)
	for i := 0; i+1 < n; i++ {
		e.Append(relation.Value(i), relation.Value(i+1))
	}
	db.Set("E", e)
	return db
}
