package main

import (
	"context"
	"fmt"
	"io"
	"time"

	"pyquery"
	"pyquery/internal/bench"
	"pyquery/internal/relation"
	"pyquery/internal/workload"
)

// runE9 measures the prepared-statement amortization (PR 5): small queries
// executed many times, one-shot EvaluateOpts (NoCache — the pre-PR-5
// facade, which re-pays classification, decomposition search, ordering,
// reduction, and index construction per call) against Prepare once +
// Exec per request. The paper's split is exactly this: the query-dependent
// planning cost is a function of (q, v, width), not the data, so a serving
// workload should pay it once. The acceptance bar is ≥2x amortized speedup
// on the repeated small-query workloads; the parameterized point lookup
// shows the serving case — one template, many bindings — where the frozen
// indexes turn each request into pure probes.
func runE9(w io.Writer, quick bool) {
	nodes, deg := 400, 12
	small := 110
	cyc := workload.CyclicLowWidthSpec{Paths: 3, PathLen: 2, Nodes: 90, Degree: 4, Seed: 91}
	if quick {
		nodes, deg = 200, 8
		small = 80
		cyc = workload.CyclicLowWidthSpec{Paths: 3, PathLen: 2, Nodes: 60, Degree: 4, Seed: 91}
	}
	graph := workload.GraphDB(nodes, nodes*deg, 90)
	// graphS keeps the color-coding row in the small-query regime: the hash
	// trials re-run per execution either way (they are data passes), so the
	// amortizable fraction is the per-call preparation — visible only when
	// the relations are request-sized.
	graphS := workload.GraphDB(small, small*4, 92)
	cycQ, cycDB := workload.CyclicLowWidth(cyc)

	// The repeated-small-query shapes: every template is pinned by a
	// constant, so answers are request-sized and the per-call planning the
	// one-shot path pays is the dominant cost — the regime the prepared API
	// is for.
	pathIneq := &pyquery.CQ{
		Head: []pyquery.Term{pyquery.V(0), pyquery.V(2)},
		Atoms: []pyquery.Atom{
			pyquery.NewAtom("E", pyquery.C(7), pyquery.V(0)),
			pyquery.NewAtom("E", pyquery.V(0), pyquery.V(1)),
			pyquery.NewAtom("E", pyquery.V(1), pyquery.V(2)),
		},
		Ineqs: []pyquery.Ineq{pyquery.NeqVars(0, 2)},
	}
	pathCmp := &pyquery.CQ{
		Head: []pyquery.Term{pyquery.V(0), pyquery.V(1)},
		Atoms: []pyquery.Atom{
			pyquery.NewAtom("E", pyquery.C(7), pyquery.V(0)),
			pyquery.NewAtom("E", pyquery.V(0), pyquery.V(1)),
		},
		Cmps: []pyquery.Cmp{pyquery.Lt(pyquery.V(0), pyquery.V(1))},
	}
	lookup := &pyquery.CQ{
		Head: []pyquery.Term{pyquery.V(1)},
		Atoms: []pyquery.Atom{
			pyquery.NewAtom("E", pyquery.C(7), pyquery.V(0)),
			pyquery.NewAtom("E", pyquery.V(0), pyquery.V(1)),
		},
	}
	triangle := &pyquery.CQ{
		Head: []pyquery.Term{pyquery.V(0), pyquery.V(1), pyquery.V(2)},
		Atoms: []pyquery.Atom{
			pyquery.NewAtom("E", pyquery.V(0), pyquery.V(1)),
			pyquery.NewAtom("E", pyquery.V(1), pyquery.V(2)),
			pyquery.NewAtom("E", pyquery.V(2), pyquery.V(0)),
			pyquery.NewAtom("L", pyquery.V(0)),
		},
		Ineqs: []pyquery.Ineq{pyquery.NeqVars(0, 1)},
	}
	// L pins the triangle scan to a handful of start vertices.
	lrel := pyquery.NewTable(1)
	for i := 0; i < 8; i++ {
		lrel.Append(pyquery.Value(i * 3))
	}
	graph.Set("L", lrel)

	ctx := context.Background()
	serial := pyquery.Options{Parallelism: 1}
	oneShotOpts := pyquery.Options{Parallelism: 1, NoCache: true}
	var rows [][]string
	run := func(label string, q *pyquery.CQ, db *pyquery.DB) {
		p, err := pyquery.Prepare(q, db, serial)
		if err != nil {
			panic(err)
		}
		want, err := pyquery.EvaluateOpts(q, db, oneShotOpts)
		if err != nil {
			panic(err)
		}
		got, err := p.Exec(ctx)
		if err != nil || !relation.EqualSet(got, want) {
			panic(fmt.Sprintf("E9 %s: prepared answer differs from one-shot (%v)", label, err))
		}
		tOne := bench.Seconds(50*time.Millisecond, func() {
			if _, err := pyquery.EvaluateOpts(q, db, oneShotOpts); err != nil {
				panic(err)
			}
		})
		tPrep := bench.Seconds(50*time.Millisecond, func() {
			if _, err := p.Exec(ctx); err != nil {
				panic(err)
			}
		})
		rows = append(rows, []string{
			label, fmt.Sprintf("%d", db.Size()), fmt.Sprintf("%d", want.Len()),
			bench.FmtSeconds(tOne), bench.FmtSeconds(tPrep), bench.FmtFloat(tOne / tPrep),
		})
	}
	run("point-lookup (yannakakis)", lookup, graph)
	run("2-path+≠ (colorcoding)", pathIneq, graphS)
	run("2-path+< (comparisons)", pathCmp, graph)
	run("theta 3x2 (decomp)", cycQ, cycDB)
	run("triangle+≠ (generic)", triangle, graph)

	// The serving case: one parameterized template, a rotating binding per
	// request. One-shot must re-plan per distinct constant (the inlined
	// query text changes, so no cache could help it); the prepared template
	// compiles once and every request is an index probe.
	tmpl := &pyquery.CQ{
		Head: []pyquery.Term{pyquery.V(1)},
		Atoms: []pyquery.Atom{
			pyquery.NewAtom("E", pyquery.P("src"), pyquery.V(0)),
			pyquery.NewAtom("E", pyquery.V(0), pyquery.V(1)),
		},
	}
	p, err := pyquery.Prepare(tmpl, graph, serial)
	if err != nil {
		panic(err)
	}
	next := 0
	inlined := func(v pyquery.Value) *pyquery.CQ {
		q, err := tmpl.BindParams(map[string]pyquery.Value{"src": v})
		if err != nil {
			panic(err)
		}
		return q
	}
	outLen := 0
	tOne := bench.Seconds(50*time.Millisecond, func() {
		v := pyquery.Value(next % nodes)
		next++
		res, err := pyquery.EvaluateOpts(inlined(v), graph, oneShotOpts)
		if err != nil {
			panic(err)
		}
		outLen = res.Len()
	})
	next = 0
	tPrep := bench.Seconds(50*time.Millisecond, func() {
		v := pyquery.Value(next % nodes)
		next++
		res, err := p.Exec(ctx, pyquery.Bind("src", v))
		if err != nil {
			panic(err)
		}
		outLen = res.Len()
	})
	rows = append(rows, []string{
		"param lookup $src (template)", fmt.Sprintf("%d", graph.Size()), fmt.Sprintf("~%d", outLen),
		bench.FmtSeconds(tOne), bench.FmtSeconds(tPrep), bench.FmtFloat(tOne / tPrep),
	})

	fmt.Fprint(w, bench.Table([]string{"workload", "|db|", "|out|",
		"one-shot", "prepared/exec", "speedup"}, rows))
	fmt.Fprintln(w, "(identical answers; one-shot = EvaluateOpts{NoCache}, prepared = Prepare once + Exec;")
	fmt.Fprintln(w, "the acceptance bar is ≥2x amortized on the repeated point-lookup/triangle workloads.")
	fmt.Fprintln(w, "The color-coding row is bounded below 2x by design: its per-execution cost is the")
	fmt.Fprintln(w, "f(k)·n hash-trial passes — data complexity the paper says every instance must pay —")
	fmt.Fprintln(w, "so only the per-call preparation (reduce, partition, family construction) amortizes)")
}
