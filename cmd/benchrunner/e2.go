package main

import (
	"fmt"
	"io"
	"math/rand"

	"pyquery/internal/bench"
	"pyquery/internal/graph"
	"pyquery/internal/paramspace"
	"pyquery/internal/reductions"
	"pyquery/internal/workload"
)

// runE2 reproduces Figure 1: the partial order of the four
// parameterizations and Proposition 1's identity-map reductions, verified
// on concrete query families.
func runE2(w io.Writer, quick bool) {
	fmt.Fprintln(w, "Partial order (arrows = identity-map parametric reductions;")
	fmt.Fprintln(w, "hardness propagates along arrows, membership against them):")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "        v/variable-schema        (top: hardest)")
	fmt.Fprintln(w, "          ↗          ↖")
	fmt.Fprintln(w, "  q/variable     v/fixed")
	fmt.Fprintln(w, "          ↖          ↗")
	fmt.Fprintln(w, "        q/fixed-schema           (bottom: easiest)")
	fmt.Fprintln(w)

	// Verify Proposition 1 on random acyclic queries and the clique family.
	sweep := 200
	if quick {
		sweep = 50
	}
	rnd := rand.New(rand.NewSource(2))
	ok := 0
	for i := 0; i < sweep; i++ {
		q, _ := workload.RandomAcyclicCQ(rnd, workload.AcyclicSpec{
			MaxAtoms: 5, MaxFresh: 3, Domain: 4, MaxRows: 6, HeadVars: true})
		good := true
		for _, arc := range paramspace.Arcs {
			if !paramspace.IdentityReductionValid(q, arc[0], arc[1]) {
				good = false
			}
		}
		if good {
			ok++
		}
	}
	fmt.Fprintf(w, "Proposition 1 identity reductions valid on %d/%d random queries\n\n", ok, sweep)

	// Parameter values on the clique query family: q grows quadratically,
	// v linearly — the reason the v-parameterized problems sit higher.
	var rows [][]string
	for k := 2; k <= 6; k++ {
		q, _ := reductions.CliqueToCQ(graph.Complete(k+1), k)
		rows = append(rows, []string{
			fmt.Sprintf("clique k=%d", k),
			fmt.Sprintf("%d", paramspace.Parameter(q, paramspace.QFixed)),
			fmt.Sprintf("%d", paramspace.Parameter(q, paramspace.VFixed)),
		})
	}
	fmt.Fprintln(w, "Parameter values on the Theorem 1 clique query family:")
	fmt.Fprint(w, bench.Table([]string{"query", "q (size)", "v (variables)"}, rows))
	fmt.Fprintln(w, "\nq = O(k²) while v = k: a v-parameterized algorithm must work with")
	fmt.Fprintln(w, "far less structure per parameter unit, which is why the positive and")
	fmt.Fprintln(w, "first-order rows of the Theorem 1 table climb to W[SAT]/W[P] under v.")
}
