// Command benchrunner regenerates every experiment of EXPERIMENTS.md: the
// Theorem 1 classification table (E1), the Figure 1 partial order (E2), the
// Theorem 2 tractability measurements (E3), the Theorem 3 hardness family
// (E4), the Section 5 example queries (E5), the Hamiltonian-path combined-
// complexity blowup (E6), the Vardi Datalog family (E7), the cyclic
// low-width decomposition workload (E8), the prepared-statement
// amortization (E9), the worst-case-optimal join workload (E10), the
// incremental-view-maintenance update workload (E11), the columnar
// substrate A/B (E12), the service-layer sustained-load and batching
// experiment (E13), and the ablations A1–A7.
//
// Usage:
//
//	benchrunner [-exp all|E1,E3,A2] [-quick]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

type experiment struct {
	id   string
	desc string
	run  func(w io.Writer, quick bool)
}

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiment ids (E1..E13, A1..A7, PAR) or 'all'")
	quick := flag.Bool("quick", false, "smaller sweeps (CI-sized)")
	flag.Parse()

	exps := []experiment{
		{"E1", "Theorem 1 classification table: reductions validated, exponents measured", runE1},
		{"E2", "Figure 1 partial order of parameterizations (Proposition 1)", runE2},
		{"E3", "Theorem 2: acyclic CQ with ≠ — near-linear in n, exponential only in k", runE3},
		{"E4", "Theorem 3: acyclic CQ with comparisons is W[1]-hard (clique family)", runE4},
		{"E5", "Section 5 examples: org-chart and registrar queries, engine vs baseline", runE5},
		{"E6", "Section 5: Hamiltonian path as a query — combined-complexity blowup", runE6},
		{"E7", "Section 4: Vardi's n^k Datalog family (arity-k IDB)", runE7},
		{"E8", "Cyclic low-width queries: decomposition engine vs n^O(q) backtracker", runE8},
		{"E9", "Prepared statements: compile-once/execute-many vs one-shot planning", runE9},
		{"E10", "Dense cyclic queries: worst-case-optimal leapfrog triejoin vs backtracker", runE10},
		{"E11", "Incremental view maintenance: 1-row update, delta Refresh vs full re-exec", runE11},
		{"E12", "Columnar substrate: narrow int32 codes vs wide cells on scan/semijoin/join", runE12},
		{"E13", "Service layer: sustained mixed-load QPS/p99 over HTTP; batching A/B on hot-key flood", runE13},
		{"A1", "Ablation: I2 pushdown vs all-hashed inequalities", runA1},
		{"A2", "Ablation: Yannakakis full reducer on/off", runA2},
		{"A3", "Ablation: join-order heuristic on/off", runA3},
		{"A4", "Ablation: Monte-Carlo confidence c vs measured success rate", runA4},
		{"A5", "Ablation: stats-driven join order vs legacy greedy heuristic", runA5},
		{"A6", "Ablation: decomposition routing vs NoDecomp backtracker (cyclic low-width)", runA6},
		{"A7", "Ablation: wcoj routing vs NoWCOJ backtracker (dense cyclic)", runA7},
		{"PAR", "Parallel scaling: Parallelism sweep across engines and the join kernel", runPAR},
	}

	want := map[string]bool{}
	if *expFlag == "all" {
		for _, e := range exps {
			want[e.id] = true
		}
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	known := map[string]bool{}
	for _, e := range exps {
		known[e.id] = true
	}
	var unknown []string
	for id := range want {
		if !known[id] {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		fmt.Fprintf(os.Stderr, "unknown experiment ids: %s\n", strings.Join(unknown, ", "))
		os.Exit(2)
	}

	for _, e := range exps {
		if !want[e.id] {
			continue
		}
		fmt.Printf("=== %s: %s ===\n", e.id, e.desc)
		e.run(os.Stdout, *quick)
		fmt.Println()
	}
}
