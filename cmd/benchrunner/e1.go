package main

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"pyquery/internal/bench"
	"pyquery/internal/boolcirc"
	"pyquery/internal/eval"
	"pyquery/internal/graph"
	"pyquery/internal/query"
	"pyquery/internal/reductions"
	"pyquery/internal/relation"
)

// runE1 reproduces the Theorem 1 table. Part 1 validates each cell's
// reductions against independent oracles over instance sweeps; part 2
// measures the data-complexity exponent of generic evaluation on the clique
// query family — the "parameter in the exponent" the table predicts.
func runE1(w io.Writer, quick bool) {
	sweep := 40
	if quick {
		sweep = 10
	}
	rnd := rand.New(rand.NewSource(1))

	type cellCheck struct {
		lang, param, class string
		check              func() (agree, total int)
	}
	checks := []cellCheck{
		{"conjunctive", "q", "W[1]-complete", func() (int, int) {
			return checkCliqueLower(rnd, sweep), sweep
		}},
		{"conjunctive", "q (upper)", "∈ W[1] via weighted 2-CNF", func() (int, int) {
			return checkCQ2CNF(rnd, sweep), sweep
		}},
		{"conjunctive", "v (upper)", "∈ W[1] via R_S rewrite", func() (int, int) {
			return checkBoundedVars(rnd, sweep), sweep
		}},
		{"positive", "q", "W[1]-complete (UCQ + footnote 2)", func() (int, int) {
			return checkPositiveUCQ(rnd, sweep), sweep
		}},
		{"positive", "v", "W[SAT]-hard (weighted formula sat)", func() (int, int) {
			return checkWFormula(rnd, sweep), sweep
		}},
		{"first-order", "q and v", "W[t]-hard / W[P]-hard (circuit sat)", func() (int, int) {
			n := sweep / 2
			if n < 5 {
				n = 5
			}
			return checkCircuitFO(rnd, n), n
		}},
	}

	var rows [][]string
	for _, c := range checks {
		agree, total := c.check()
		status := "VERIFIED"
		if agree != total {
			status = fmt.Sprintf("FAILED (%d/%d)", agree, total)
		}
		rows = append(rows, []string{c.lang, c.param, c.class, fmt.Sprintf("%d/%d", agree, total), status})
	}
	fmt.Fprintln(w, "Reduction validation (each cell of the Theorem 1 table):")
	fmt.Fprint(w, bench.Table([]string{"language", "parameter", "paper class", "instances", "status"}, rows))

	// Part 2: the empirical exponent of generic clique-query evaluation.
	fmt.Fprintln(w, "\nEmpirical data-complexity exponent of the generic evaluator")
	fmt.Fprintln(w, "on the k-clique query over Turán graphs T(n,k−1) (no k-clique,")
	fmt.Fprintln(w, "maximal near-cliques → full search):")
	sizes := map[int][]int{
		3: {30, 45, 68, 100},
		4: {16, 24, 36},
		5: {10, 14, 20},
	}
	if quick {
		sizes = map[int][]int{3: {20, 30, 45}, 4: {10, 15, 22}, 5: {8, 11, 15}}
	}
	var erows [][]string
	for _, k := range []int{3, 4, 5} {
		var s bench.Series
		for _, n := range sizes[k] {
			g := turan(n, k-1)
			q, db := reductions.CliqueToCQ(g, k)
			secs := bench.Seconds(10*time.Millisecond, func() {
				ok, err := eval.ConjunctiveBoolOpts(q, db, serialEval)
				if err != nil || ok {
					panic(fmt.Sprintf("turán graph should have no %d-clique: %v %v", k, ok, err))
				}
			})
			s.Add(float64(n), secs)
		}
		last := s.Points[len(s.Points)-1]
		erows = append(erows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%v", sizes[k]),
			bench.FmtSeconds(last.Y),
			bench.FmtFloat(s.Slope()),
			fmt.Sprintf("≈%d (paper: k in the exponent)", k),
		})
	}
	fmt.Fprint(w, bench.Table([]string{"k", "n sweep", "time @max n", "measured slope", "expected"}, erows))
}

// turan builds the Turán graph T(n,r): complete r-partite, no (r+1)-clique.
func turan(n, r int) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if u%r != v%r {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func checkCliqueLower(rnd *rand.Rand, sweep int) int {
	agree := 0
	for i := 0; i < sweep; i++ {
		g := graph.Random(6+rnd.Intn(8), 0.3+0.5*rnd.Float64(), rnd.Int63())
		k := 2 + rnd.Intn(3)
		q, db := reductions.CliqueToCQ(g, k)
		got, err := eval.ConjunctiveBoolOpts(q, db, serialEval)
		if err == nil && got == g.HasClique(k) {
			agree++
		}
	}
	return agree
}

func checkCQ2CNF(rnd *rand.Rand, sweep int) int {
	agree := 0
	for i := 0; i < sweep; i++ {
		q, db := randBoolCQ(rnd)
		want, err := eval.ConjunctiveBoolOpts(q, db, serialEval)
		if err != nil {
			agree++ // nothing to validate
			continue
		}
		red, err := reductions.CQToWeighted2CNF(q, db)
		if err != nil {
			continue
		}
		if _, got := red.Formula.WeightedSatisfiable(red.K); got == want {
			agree++
		}
	}
	return agree
}

func checkBoundedVars(rnd *rand.Rand, sweep int) int {
	agree := 0
	for i := 0; i < sweep; i++ {
		q, db := randBoolCQ(rnd)
		want, err := eval.ConjunctiveOpts(q, db, serialEval)
		if err != nil {
			agree++
			continue
		}
		q2, db2, err := reductions.BoundedVars(q, db)
		if err != nil {
			continue
		}
		got, err := eval.ConjunctiveOpts(q2, db2, serialEval)
		if err == nil && relation.EqualSet(got, want) {
			agree++
		}
	}
	return agree
}

func checkPositiveUCQ(rnd *rand.Rand, sweep int) int {
	agree := 0
	for i := 0; i < sweep; i++ {
		fo, db := randPositive(rnd)
		want, err := eval.PositiveBool(fo, db)
		if err != nil {
			agree++
			continue
		}
		cqs, err := reductions.PositiveToUCQ(fo)
		if err != nil {
			continue
		}
		got := false
		for _, cq := range cqs {
			if ok, err := eval.ConjunctiveBoolOpts(cq, db, serialEval); err == nil && ok {
				got = true
				break
			}
		}
		g, k, err := reductions.PositiveToClique(fo, db)
		if err != nil {
			continue
		}
		if got == want && g.HasClique(k) == want {
			agree++
		}
	}
	return agree
}

func checkWFormula(rnd *rand.Rand, sweep int) int {
	agree := 0
	for i := 0; i < sweep; i++ {
		n := 2 + rnd.Intn(4)
		k := rnd.Intn(n + 1)
		phi := randBoolFormula(rnd, 3, n)
		_, want := boolcirc.WeightedSatFormula(phi, n, k)
		fo, db := reductions.WeightedFormulaToPositive(phi, n, k)
		if got, err := eval.PositiveBool(fo, db); err == nil && got == want {
			agree++
		}
	}
	return agree
}

func checkCircuitFO(rnd *rand.Rand, sweep int) int {
	agree := 0
	for i := 0; i < sweep; i++ {
		inputs := 2 + rnd.Intn(3)
		c := randMonotoneCircuit(rnd, inputs, 1+rnd.Intn(4))
		k := rnd.Intn(3)
		if k > inputs {
			k = inputs
		}
		fo, db, err := reductions.MonotoneCircuitToFO(c, k)
		if err != nil {
			continue
		}
		got, err := eval.FirstOrderBool(fo, db)
		_, want := c.WeightedSatisfiable(k)
		if err == nil && got == want {
			agree++
		}
	}
	return agree
}

// --- shared random instance builders --------------------------------------

func randBoolCQ(rnd *rand.Rand) (*query.CQ, *query.DB) {
	db := query.NewDB()
	domain := 2 + rnd.Intn(3)
	names := []string{"R", "S"}
	arities := []int{1 + rnd.Intn(2), 2}
	for i, name := range names {
		r := query.NewTable(arities[i])
		row := make([]relation.Value, arities[i])
		for j := 0; j < rnd.Intn(8); j++ {
			for c := range row {
				row[c] = relation.Value(rnd.Intn(domain))
			}
			r.Append(row...)
		}
		r.Dedup()
		db.Set(name, r)
	}
	q := &query.CQ{}
	nvars := 1 + rnd.Intn(3)
	for i := 0; i < 1+rnd.Intn(3); i++ {
		ri := rnd.Intn(len(names))
		args := make([]query.Term, arities[ri])
		for j := range args {
			if rnd.Intn(6) == 0 {
				args[j] = query.C(relation.Value(rnd.Intn(domain)))
			} else {
				args[j] = query.V(query.Var(rnd.Intn(nvars)))
			}
		}
		q.Atoms = append(q.Atoms, query.Atom{Rel: names[ri], Args: args})
	}
	return q, db
}

func randPositive(rnd *rand.Rand) (*query.FOQuery, *query.DB) {
	nvars := 2 + rnd.Intn(2)
	var build func(depth int) query.Formula
	build = func(depth int) query.Formula {
		if depth == 0 || rnd.Intn(3) == 0 {
			return query.FAtom{Atom: query.NewAtom("E",
				query.V(query.Var(rnd.Intn(nvars))), query.V(query.Var(rnd.Intn(nvars))))}
		}
		switch rnd.Intn(3) {
		case 0:
			return query.And{Subs: []query.Formula{build(depth - 1), build(depth - 1)}}
		case 1:
			return query.Or{Subs: []query.Formula{build(depth - 1), build(depth - 1)}}
		default:
			return query.Exists{V: query.Var(rnd.Intn(nvars)), Sub: build(depth - 1)}
		}
	}
	body := build(3)
	for _, v := range query.FreeVars(body) {
		body = query.Exists{V: v, Sub: body}
	}
	db := query.NewDB()
	r := query.NewTable(2)
	for i := 0; i < rnd.Intn(8); i++ {
		r.Append(relation.Value(rnd.Intn(3)), relation.Value(rnd.Intn(3)))
	}
	r.Dedup()
	db.Set("E", r)
	return &query.FOQuery{Body: body}, db
}

func randBoolFormula(rnd *rand.Rand, depth, vars int) boolcirc.Formula {
	if depth == 0 || rnd.Intn(3) == 0 {
		return boolcirc.FVar{V: rnd.Intn(vars), Neg: rnd.Intn(2) == 0}
	}
	switch rnd.Intn(3) {
	case 0:
		return boolcirc.FNot{Sub: randBoolFormula(rnd, depth-1, vars)}
	case 1:
		return boolcirc.FAnd{Subs: []boolcirc.Formula{
			randBoolFormula(rnd, depth-1, vars), randBoolFormula(rnd, depth-1, vars)}}
	default:
		return boolcirc.FOr{Subs: []boolcirc.Formula{
			randBoolFormula(rnd, depth-1, vars), randBoolFormula(rnd, depth-1, vars)}}
	}
}

func randMonotoneCircuit(rnd *rand.Rand, inputs, extra int) *boolcirc.Circuit {
	c := boolcirc.New(inputs)
	for i := 0; i < extra; i++ {
		kind := boolcirc.And
		if rnd.Intn(2) == 0 {
			kind = boolcirc.Or
		}
		fanin := 1 + rnd.Intn(2)
		in := make([]int, fanin)
		for j := range in {
			in[j] = rnd.Intn(len(c.Gates))
		}
		c.AddGate(kind, in...)
	}
	c.SetOutput(len(c.Gates) - 1)
	return c
}
