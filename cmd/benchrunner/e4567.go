package main

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"pyquery/internal/bench"
	"pyquery/internal/core"
	"pyquery/internal/datalog"
	"pyquery/internal/eval"
	"pyquery/internal/graph"
	"pyquery/internal/order"
	"pyquery/internal/reductions"
	"pyquery/internal/workload"
)

// runE4 measures Theorem 3: acyclic queries with comparisons embed clique,
// and generic evaluation pays n in the exponent.
func runE4(w io.Writer, quick bool) {
	// Validation sweep.
	sweep := 25
	if quick {
		sweep = 8
	}
	rnd := rand.New(rand.NewSource(4))
	agree := 0
	for i := 0; i < sweep; i++ {
		g := graph.Random(4+rnd.Intn(4), 0.4+0.4*rnd.Float64(), rnd.Int63())
		k := 2 + rnd.Intn(2)
		q, db := reductions.CliqueToComparisons(g, k)
		got, err := order.EvaluateBoolOpts(q, db, serialEval)
		if err == nil && got == g.HasClique(k) && order.IsAcyclicWithComparisons(q) {
			agree++
		}
	}
	fmt.Fprintf(w, "reduction validated on %d/%d random instances (acyclic + answer agrees with clique oracle)\n\n", agree, sweep)

	// Timing: Turán graphs (no k-clique → full search).
	sizes := map[int][]int{2: {8, 12, 16, 24}, 3: {6, 9, 12}}
	if quick {
		sizes = map[int][]int{2: {6, 9, 12}, 3: {5, 7, 9}}
	}
	var rows [][]string
	for _, k := range []int{2, 3} {
		var s bench.Series
		for _, n := range sizes[k] {
			g := turan(n, k-1)
			q, db := reductions.CliqueToComparisons(g, k)
			secs := bench.Seconds(10*time.Millisecond, func() {
				ok, err := order.EvaluateBoolOpts(q, db, serialEval)
				if err != nil || ok {
					panic("turán instance must be negative")
				}
			})
			s.Add(float64(n), secs)
		}
		rows = append(rows, []string{fmt.Sprintf("%d", k), fmt.Sprintf("%v", sizes[k]),
			bench.FmtSeconds(s.Points[len(s.Points)-1].Y), bench.FmtFloat(s.Slope())})
	}
	fmt.Fprint(w, bench.Table([]string{"k", "n sweep", "time @max", "slope vs n"}, rows))
	fmt.Fprintln(w, "(database is Θ(n³) tuples; slope grows with k — no f(k)·poly algorithm, unlike E3)")
}

// runE5 reproduces the Section 5 example queries and compares the Theorem 2
// engine against the generic backtracking baseline.
func runE5(w io.Writer, quick bool) {
	sizes := []int{500, 1000, 2000, 4000}
	if quick {
		sizes = []int{200, 400, 800}
	}
	var rows [][]string
	for _, n := range sizes {
		org := workload.OrgChart(n, 40, 3, 21)
		q := workload.MultiProjectQuery()
		tCore := bench.Seconds(20*time.Millisecond, func() {
			if _, err := core.EvaluateOpts(q, org, serialCore); err != nil {
				panic(err)
			}
		})
		tGen := bench.Seconds(20*time.Millisecond, func() {
			if _, err := eval.ConjunctiveOpts(q, org, serialEval); err != nil {
				panic(err)
			}
		})
		reg := workload.Registrar(n, 60, 8, 3, 22)
		qr := workload.OutsideDeptQuery()
		tCoreR := bench.Seconds(20*time.Millisecond, func() {
			if _, err := core.EvaluateOpts(qr, reg, serialCore); err != nil {
				panic(err)
			}
		})
		tGenR := bench.Seconds(20*time.Millisecond, func() {
			if _, err := eval.ConjunctiveOpts(qr, reg, serialEval); err != nil {
				panic(err)
			}
		})
		rows = append(rows, []string{
			fmt.Sprintf("%d", n),
			bench.FmtSeconds(tCore), bench.FmtSeconds(tGen), bench.FmtFloat(tGen / tCore),
			bench.FmtSeconds(tCoreR), bench.FmtSeconds(tGenR), bench.FmtFloat(tGenR / tCoreR),
		})
	}
	fmt.Fprint(w, bench.Table([]string{"scale",
		"org core", "org generic", "gen/core", "reg core", "reg generic", "gen/core"}, rows))
	fmt.Fprintln(w, "(identical answers; at k=2 the generic evaluator's n^q is effectively")
	fmt.Fprintln(w, "quadratic-with-tiny-degree, so it wins — the paper's claim is worst-case)")

	// (b) the worst case: the k-path query with x₀ ≠ x_k over dead-end
	// layers. The single I₁ inequality keeps the hash range at 2 (family of
	// a handful of functions), while backtracking still enumerates
	// ~width^(k-1) prefixes before concluding "no path" — the crossover the
	// FPT bound promises.
	fmt.Fprintln(w, "\n(b) worst-case family: k-path with x0≠xk, dense dead-end layers:")
	k := 4
	widths := []int{20, 40, 80, 160}
	if quick {
		widths = []int{10, 20, 40}
	}
	q := workload.EndpointsDistinctPathQuery(k)
	// Monte-Carlo family: on negative instances one-sided error means the
	// answer is always exact, and the family size is independent of n —
	// the clean way to exhibit the f(k)·n shape.
	mc := core.Options{Parallelism: 1, Strategy: core.MonteCarlo, C: 3, Seed: 9}
	var brows [][]string
	var genS, coreS bench.Series
	for _, width := range widths {
		db := workload.DeadEndPathDB(width, k)
		tCore := bench.Seconds(20*time.Millisecond, func() {
			got, err := core.EvaluateBoolOpts(q, db, mc)
			if err != nil || got {
				panic("dead-end instance must be negative")
			}
		})
		tGen := bench.Seconds(20*time.Millisecond, func() {
			got, err := eval.ConjunctiveBoolOpts(q, db, serialEval)
			if err != nil || got {
				panic("dead-end instance must be negative")
			}
		})
		coreS.Add(float64(db.Size()), tCore)
		genS.Add(float64(db.Size()), tGen)
		brows = append(brows, []string{
			fmt.Sprintf("%d", width), fmt.Sprintf("%d", db.Size()),
			bench.FmtSeconds(tCore), bench.FmtSeconds(tGen), bench.FmtFloat(tGen / tCore),
		})
	}
	fmt.Fprint(w, bench.Table([]string{"width", "|db|", "core (Thm 2)", "generic", "gen/core"}, brows))
	fmt.Fprintf(w, "slope vs |db|: core %s (≈1, FPT), generic %s (≈(k-1)/2: width^(k-1) with |db|=width²)\n",
		bench.FmtFloat(coreS.Slope()), bench.FmtFloat(genS.Slope()))
}

// runE6 shows the Section 5 caveat: when the query grows with the database
// (Hamiltonian path), fixed-parameter tractability buys nothing — time
// explodes in n for every method.
func runE6(w io.Writer, quick bool) {
	maxN := 8
	if quick {
		maxN = 6
	}
	var rows [][]string
	var engine, dp bench.Series
	for n := 4; n <= maxN; n++ {
		g := graph.Random(n, 0.5, int64(100+n))
		q, db := reductions.HamPathToIneqCQ(g)
		_, wantOK := g.HamiltonianPath()
		tEng := bench.Seconds(5*time.Millisecond, func() {
			got, err := core.EvaluateBoolOpts(q, db, serialCore)
			if err != nil || got != wantOK {
				panic(fmt.Sprintf("engine disagrees with Held–Karp: %v %v", got, err))
			}
		})
		tDP := bench.Seconds(5*time.Millisecond, func() {
			g.HamiltonianPath()
		})
		engine.Add(float64(n), tEng)
		dp.Add(float64(n), tDP)
		rows = append(rows, []string{fmt.Sprintf("%d", n), fmt.Sprintf("%v", wantOK),
			bench.FmtSeconds(tEng), bench.FmtSeconds(tDP)})
	}
	fmt.Fprint(w, bench.Table([]string{"n", "has ham path", "Theorem 2 engine", "Held–Karp DP"}, rows))
	fmt.Fprintf(w, "per-step growth: engine ×%s, DP ×%s — k = n puts the parameter in the\n",
		bench.FmtFloat(engine.GrowthRatio()), bench.FmtFloat(dp.GrowthRatio()))
	fmt.Fprintln(w, "exponent for both (combined complexity is NP-complete; paper §5).")
}

// runE7 reproduces Vardi's point: an arity-k IDB materializes Θ(n^k)
// tuples, so the parameter provably sits in the exponent for Datalog.
func runE7(w io.Writer, quick bool) {
	sizes := map[int][]int{
		1: {20, 40, 80},
		2: {8, 16, 32},
		3: {4, 8, 12},
	}
	if quick {
		sizes = map[int][]int{1: {10, 20, 40}, 2: {5, 10, 20}, 3: {3, 6, 9}}
	}
	var rows [][]string
	for _, k := range []int{1, 2, 3} {
		p := datalog.VardiFamily(k)
		var s bench.Series
		exact := true
		for _, n := range sizes[k] {
			db := workload.CompleteDigraphDB(n)
			var derived int
			secs := bench.Seconds(10*time.Millisecond, func() {
				goal, _, err := datalog.EvalGoal(p, db, datalog.Options{Parallelism: 1})
				if err != nil {
					panic(err)
				}
				derived = goal.Len()
			})
			want := 1
			for i := 0; i < k; i++ {
				want *= n
			}
			if derived != want {
				exact = false
			}
			s.Add(float64(n), secs)
		}
		status := "|T| = n^k exactly"
		if !exact {
			status = "MISMATCH"
		}
		rows = append(rows, []string{fmt.Sprintf("%d", k), fmt.Sprintf("%v", sizes[k]),
			bench.FmtSeconds(s.Points[len(s.Points)-1].Y), bench.FmtFloat(s.Slope()), status})
	}
	fmt.Fprint(w, bench.Table([]string{"k", "n sweep", "time @max", "slope vs n", "tuple count"}, rows))
	fmt.Fprintln(w, "(expected slope ≈ max(2,k): the n² input relation dominates for k≤2,")
	fmt.Fprintln(w, "the n^k IDB for k>2 — the arity is provably in the exponent, no")
	fmt.Fprintln(w, "complexity assumption needed)")
}
