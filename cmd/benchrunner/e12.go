package main

import (
	"fmt"
	"io"
	"time"

	"pyquery/internal/bench"
	"pyquery/internal/relation"
	"pyquery/internal/stats"
)

// runE12 measures the columnar-substrate claim (PR 9): relations store
// column-major with per-column narrow int32 codes when every value fits,
// so hot kernels touch 4-byte cells and contiguous slices. The A/B ablates
// the narrow representation via relation.SetNarrowCodes — the "wide" arm
// stores every column as 8-byte values, the row-major layout's per-cell
// cost in columnar clothes — over an interned workload (small symbol
// codes, the paper's typical database encoding): a stats scan, a
// semijoin, a natural join, and the resident relation bytes. The
// acceptance bar is ≥1.5x on semijoin/probe throughput or ≥1.5x on peak
// bytes; narrow codes halve every cell, so the bytes column must read 2x.
func runE12(w io.Writer, quick bool) {
	n := 200000
	if quick {
		n = 40000
	}

	// build constructs the interned workload under the current narrow-codes
	// setting: lhs(0,1) ⋈/⋉ rhs(1,2) with moderate key fanout.
	build := func() (lhs, rhs *relation.Relation) {
		lhs = relation.New(relation.Schema{0, 1})
		rhs = relation.New(relation.Schema{1, 2})
		for i := 0; i < n; i++ {
			lhs.Append(relation.Value(i%(n/40)), relation.Value(i%(n/20)))
			rhs.Append(relation.Value(i%(n/80)), relation.Value(i%250))
		}
		return lhs, rhs
	}

	type arm struct {
		scan, semi, join float64
		bytes            int64
	}
	measure := func(narrow bool) arm {
		prev := relation.SetNarrowCodes(narrow)
		defer relation.SetNarrowCodes(prev)
		lhs, rhs := build()
		var a arm
		a.bytes = lhs.Bytes() + rhs.Bytes()
		a.scan = bench.Seconds(20*time.Millisecond, func() {
			stats.Of(lhs)
		})
		a.semi = bench.Seconds(20*time.Millisecond, func() {
			relation.Semijoin(lhs, rhs)
		})
		a.join = bench.Seconds(20*time.Millisecond, func() {
			relation.NaturalJoin(lhs, rhs)
		})
		return a
	}

	narrow := measure(true)
	wide := measure(false)

	rows := [][]string{
		{"stats scan", bench.FmtSeconds(wide.scan), bench.FmtSeconds(narrow.scan), bench.FmtFloat(wide.scan / narrow.scan)},
		{"semijoin", bench.FmtSeconds(wide.semi), bench.FmtSeconds(narrow.semi), bench.FmtFloat(wide.semi / narrow.semi)},
		{"natural join", bench.FmtSeconds(wide.join), bench.FmtSeconds(narrow.join), bench.FmtFloat(wide.join / narrow.join)},
		{"resident bytes", fmt.Sprintf("%d", wide.bytes), fmt.Sprintf("%d", narrow.bytes), bench.FmtFloat(float64(wide.bytes) / float64(narrow.bytes))},
	}
	fmt.Fprint(w, bench.Table([]string{"kernel", "wide (8B cells)", "narrow (4B codes)", "wide/narrow"}, rows))
	fmt.Fprintf(w, "(%d-row interned workload; identical outputs both arms. Narrow codes halve\n", n)
	fmt.Fprintln(w, "every cell, so resident bytes must read 2.0x; kernel ratios show the")
	fmt.Fprintln(w, "bandwidth effect of 4-byte contiguous columns on scan/probe-heavy operators)")
}
