package main

import (
	"context"
	"fmt"
	"io"
	"time"

	"pyquery"
	"pyquery/internal/bench"
	"pyquery/internal/relation"
	"pyquery/internal/workload"
)

// runE11 measures the incremental-maintenance claim (PR 8): the cost of
// keeping a standing query's answer current across 1-row updates, delta
// Refresh against full re-execution of the same prepared statement. The
// delta rules touch O(Δ · probe) state per update while re-execution pays
// the full join regardless of how little changed, so the gap must grow with
// database size; the acceptance bar is ≥50x on the path, triangle, and
// point-lookup templates.
func runE11(w io.Writer, quick bool) {
	nodes, deg := 400, 12
	if quick {
		nodes, deg = 200, 8
	}
	graph := workload.GraphDB(nodes, nodes*deg, 93)

	path := &pyquery.CQ{
		Head: []pyquery.Term{pyquery.V(0), pyquery.V(2)},
		Atoms: []pyquery.Atom{
			pyquery.NewAtom("E", pyquery.V(0), pyquery.V(1)),
			pyquery.NewAtom("E", pyquery.V(1), pyquery.V(2)),
		},
	}
	lookup := &pyquery.CQ{
		Head: []pyquery.Term{pyquery.V(1)},
		Atoms: []pyquery.Atom{
			pyquery.NewAtom("E", pyquery.C(7), pyquery.V(0)),
			pyquery.NewAtom("E", pyquery.V(0), pyquery.V(1)),
		},
	}

	ctx := context.Background()
	serial := pyquery.Options{Parallelism: 1}
	var rows [][]string
	run := func(label string, q *pyquery.CQ, db *pyquery.DB, extra []pyquery.Value) {
		p, err := pyquery.Prepare(q, db, serial)
		if err != nil {
			panic(err)
		}
		// Correctness warmup: fold a few update deltas into a view and pin it
		// against a fresh evaluation — the maintained answer must be exact
		// before its speed means anything.
		view := pyquery.NewTable(len(q.Head))
		fold := func() {
			added, removed, err := p.Refresh(ctx)
			if err != nil {
				panic(err)
			}
			next := pyquery.NewTable(len(q.Head))
			for i := 0; i < view.Len(); i++ {
				if !removed.Contains(view.Row(i)) {
					next.Append(view.Row(i)...)
				}
			}
			for i := 0; i < added.Len(); i++ {
				next.Append(added.Row(i)...)
			}
			view = next
			want, err := pyquery.EvaluateOpts(q, db, pyquery.Options{Parallelism: 1, NoCache: true})
			if err != nil {
				panic(err)
			}
			if !relation.EqualSet(view.Sort(), want.Sort()) {
				panic(fmt.Sprintf("E11 %s: maintained view differs from fresh evaluation", label))
			}
		}
		fold()
		db.Insert("E", extra)
		fold()
		db.Delete("E", extra)
		fold()
		outLen := view.Len()

		// Measured loop: each iteration is one 1-row update (alternating
		// insert/delete of the same edge, so the database size stays pinned)
		// plus the work to bring the answer current.
		flip := false
		update := func() {
			if flip {
				db.Delete("E", extra)
			} else {
				db.Insert("E", extra)
			}
			flip = !flip
		}
		tRefresh := bench.Seconds(50*time.Millisecond, func() {
			update()
			if _, _, err := p.Refresh(ctx); err != nil {
				panic(err)
			}
		})
		if flip {
			db.Delete("E", extra)
			flip = false
		}
		if _, _, err := p.Refresh(ctx); err != nil {
			panic(err)
		}
		tExec := bench.Seconds(50*time.Millisecond, func() {
			update()
			if _, err := p.Exec(ctx); err != nil {
				panic(err)
			}
		})
		if flip {
			db.Delete("E", extra)
		}
		rows = append(rows, []string{
			label, fmt.Sprintf("%d", db.Size()), fmt.Sprintf("%d", outLen),
			bench.FmtSeconds(tExec), bench.FmtSeconds(tRefresh), bench.FmtFloat(tExec / tRefresh),
		})
	}
	run("2-path", path, graph, []pyquery.Value{pyquery.Value(nodes + 1), pyquery.Value(nodes + 2)})
	run("triangle", workload.TriangleQuery(), graph, []pyquery.Value{pyquery.Value(nodes + 1), pyquery.Value(nodes + 2)})
	run("point-lookup E(7,x),E(x,y)", lookup, graph, []pyquery.Value{7, pyquery.Value(nodes + 5)})

	fmt.Fprint(w, bench.Table([]string{"standing query", "|db|", "|out|",
		"full re-exec", "refresh", "speedup"}, rows))
	fmt.Fprintln(w, "(maintained view pinned set-equal to fresh evaluation before timing; each")
	fmt.Fprintln(w, "iteration = one 1-row insert-or-delete + bringing the answer current.")
	fmt.Fprintln(w, "The acceptance bar is ≥50x: Refresh touches O(Δ) state per update while")
	fmt.Fprintln(w, "re-execution pays the full join however small the change)")
}
