module pyquery

go 1.24
