// Package pyquery is a library for parameterized-complexity-aware database
// query evaluation, reproducing Papadimitriou & Yannakakis, "On the
// Complexity of Database Queries" (PODS 1997 / JCSS 1999).
//
// The package exposes four engines behind one Evaluate call:
//
//   - Yannakakis' acyclic-join algorithm for pure acyclic conjunctive
//     queries (polynomial in input + output);
//   - the paper's Theorem 2 color-coding engine for acyclic conjunctive
//     queries with ≠ atoms (fixed-parameter tractable: f(k)·n log n);
//   - Klug-style preprocessing plus generic evaluation for queries with
//     order comparisons (W[1]-complete even when acyclic — Theorem 3);
//   - generic backtracking join for everything else (the n^{O(q)} baseline
//     whose exponent Theorem 1 classifies as inherent).
//
// Plan reports which engine a query gets and why. The reductions behind the
// paper's W-hierarchy classification live in internal/reductions and are
// exercised by cmd/reduce and cmd/benchrunner.
package pyquery

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"pyquery/internal/core"
	"pyquery/internal/eval"
	"pyquery/internal/order"
	"pyquery/internal/parser"
	"pyquery/internal/plan"
	"pyquery/internal/query"
	"pyquery/internal/relation"
	"pyquery/internal/yannakakis"
)

// Re-exported core types. Downstream code uses pyquery.CQ etc.; the
// internal packages stay encapsulated.
type (
	// CQ is a conjunctive query with optional ≠ and comparison atoms.
	CQ = query.CQ
	// FOQuery is a first-order query.
	FOQuery = query.FOQuery
	// DB is a database instance.
	DB = query.DB
	// Relation is a set of tuples.
	Relation = relation.Relation
	// Value is a domain element.
	Value = relation.Value
	// Term is a variable or constant in a query.
	Term = query.Term
	// Var identifies a query variable.
	Var = query.Var
	// Atom is a relational atom.
	Atom = query.Atom
	// Ineq is an inequality (≠) atom.
	Ineq = query.Ineq
	// Cmp is a comparison (<, ≤) atom.
	Cmp = query.Cmp
	// Parser parses the textual query syntax.
	Parser = parser.Parser
	// Symbols interns symbolic constants.
	Symbols = parser.Symbols
	// Stats reports what the Theorem 2 engine did.
	Stats = core.Stats
	// Options configures evaluation. Parallelism applies to every engine
	// (0 = GOMAXPROCS, 1 = serial); the remaining fields configure the
	// Theorem 2 color-coding engine and are ignored elsewhere.
	Options = core.Options
)

// Constructors re-exported for query building.
var (
	// V builds a variable term.
	V = query.V
	// C builds a constant term.
	C = query.C
	// NewAtom builds a relational atom.
	NewAtom = query.NewAtom
	// NeqVars builds x ≠ y.
	NeqVars = query.NeqVars
	// NeqConst builds x ≠ c.
	NeqConst = query.NeqConst
	// Lt builds a strict comparison.
	Lt = query.Lt
	// Le builds a weak comparison.
	Le = query.Le
	// NewDB returns an empty database.
	NewDB = query.NewDB
	// NewTable returns an empty base relation of the given arity.
	NewTable = query.NewTable
	// Table builds a base relation from rows.
	Table = query.Table
	// NewParser returns a parser with a fresh symbol table.
	NewParser = parser.New
	// NewSymbols returns an empty symbol table.
	NewSymbols = parser.NewSymbols
	// LoadCSV loads a CSV stream as a relation.
	LoadCSV = parser.LoadCSV
)

// Engine identifies which evaluation algorithm Plan selects.
type Engine int

// Engines, in dispatch order.
const (
	// EngineYannakakis: pure acyclic conjunctive query.
	EngineYannakakis Engine = iota
	// EngineColorCoding: acyclic conjunctive query with ≠ atoms (Theorem 2).
	EngineColorCoding
	// EngineComparisons: comparison atoms present — consistency check,
	// equality collapse, then generic evaluation (Theorem 3 says no FPT
	// algorithm is expected).
	EngineComparisons
	// EngineGeneric: cyclic query — backtracking join, n^{O(q)}.
	EngineGeneric
)

func (e Engine) String() string {
	switch e {
	case EngineYannakakis:
		return "yannakakis (acyclic, poly input+output)"
	case EngineColorCoding:
		return "color-coding (Theorem 2, f(k)·n log n)"
	case EngineComparisons:
		return "comparisons (Theorem 3 territory, generic join)"
	case EngineGeneric:
		return "generic backtracking join (n^O(q))"
	}
	return "unknown"
}

// Plan selects the engine for a query.
func Plan(q *CQ) Engine {
	if len(q.Cmps) > 0 {
		for _, c := range q.Cmps {
			if c.Left.IsVar || c.Right.IsVar {
				return EngineComparisons
			}
		}
	}
	if !core.IsAcyclicWithIneqs(q) {
		return EngineGeneric
	}
	if len(q.Ineqs) > 0 {
		return EngineColorCoding
	}
	return EngineYannakakis
}

// Evaluate computes Q(d), dispatching to the best engine for the query's
// class. The answer uses the positional schema 0…len(head)−1. Evaluation
// uses the default options — in particular Parallelism 0, i.e. GOMAXPROCS
// workers; pass Options{Parallelism: 1} to EvaluateOpts for the serial
// engines.
func Evaluate(q *CQ, db *DB) (*Relation, error) {
	return EvaluateOpts(q, db, Options{})
}

// EvaluateOpts is Evaluate with explicit options. Options.Parallelism is
// forwarded to whichever engine Plan selects (0 = GOMAXPROCS, 1 = serial);
// the answer set is the same at every parallelism level.
func EvaluateOpts(q *CQ, db *DB, opts Options) (*Relation, error) {
	switch Plan(q) {
	case EngineYannakakis:
		return yannakakis.EvaluateOpts(q, db, yannakakis.Options{Parallelism: opts.Parallelism})
	case EngineColorCoding:
		return core.EvaluateOpts(q, db, opts)
	case EngineComparisons:
		return order.EvaluateOpts(q, db, eval.Options{Parallelism: opts.Parallelism})
	default:
		return eval.ConjunctiveOpts(q, db, eval.Options{Parallelism: opts.Parallelism})
	}
}

// EvaluateBool decides Q(d) ≠ ∅ with the dispatched engine.
func EvaluateBool(q *CQ, db *DB) (bool, error) {
	return EvaluateBoolOpts(q, db, Options{})
}

// EvaluateBoolOpts is EvaluateBool with explicit options.
func EvaluateBoolOpts(q *CQ, db *DB, opts Options) (bool, error) {
	switch Plan(q) {
	case EngineYannakakis:
		return yannakakis.EvaluateBoolOpts(q, db, yannakakis.Options{Parallelism: opts.Parallelism})
	case EngineColorCoding:
		return core.EvaluateBoolOpts(q, db, opts)
	case EngineComparisons:
		return order.EvaluateBoolOpts(q, db, eval.Options{Parallelism: opts.Parallelism})
	default:
		return eval.ConjunctiveBoolOpts(q, db, eval.Options{Parallelism: opts.Parallelism})
	}
}

// Decide answers the decision problem t ∈ Q(d): substitute the tuple into
// the head and test emptiness.
func Decide(q *CQ, db *DB, t []Value) (bool, error) {
	bound, err := q.BindHead(t)
	if query.IsTrivialMismatch(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return EvaluateBool(bound, db)
}

// EvaluateFO evaluates a first-order query under active-domain semantics.
func EvaluateFO(q *FOQuery, db *DB) (*Relation, error) {
	return eval.FirstOrder(q, db)
}

// Explain describes the dispatch decision and, for the color-coding
// engine, the parameter split the paper's Theorem 2 works with. It
// inspects only the query; PlanDB/ExplainDB add the database-dependent
// cost-based plan.
func Explain(q *CQ) string {
	e := Plan(q)
	s := fmt.Sprintf("engine: %v\nquery size q=%d, variables v=%d", e, q.Size(), q.NumVars())
	if e == EngineColorCoding {
		i1, i2, v1, ok := core.Partition(q)
		if !ok {
			return s + "\nunsatisfiable inequality (x≠x): empty answer"
		}
		s += fmt.Sprintf("\nI1 (hashed) inequalities: %d, I2 (pushed-down): %d, |V1|=k=%d",
			len(i1), len(i2), len(v1))
	}
	return s
}

// PlanStep is one ordered join step of a PlanReport, re-exported from
// internal/plan.
type PlanStep = plan.Step

// PlanReport is the structured planning outcome for a (query, database)
// pair: the routing decision plus the cost-based plan the selected engine
// will execute, with estimated cardinalities from the shared statistics
// layer (internal/stats cached on the DB, internal/plan's distinct-count
// selectivity model).
type PlanReport struct {
	// Engine is the routing decision (identical to Plan's).
	Engine Engine
	// QuerySize and NumVars are the paper's two parameters q and v.
	QuerySize, NumVars int
	// K, I1, I2 describe the Theorem 2 inequality partition
	// (EngineColorCoding only): |V₁| and the I₁/I₂ sizes.
	K, I1, I2 int
	// Unsatisfiable marks queries whose constraints alone force the empty
	// answer (an x≠x inequality, or inconsistent comparisons); no plan is
	// produced.
	Unsatisfiable bool
	// Steps is the cost-based join order — the order the generic
	// backtracker executes, built from the same model that weights the
	// acyclic engines' join trees. Rows is each atom's exact reduced
	// cardinality; Est the estimated cumulative cardinality.
	Steps []PlanStep
	// RootAtom indexes q.Atoms at the weighted join-tree root (acyclic
	// engines only; -1 otherwise).
	RootAtom int
	// EstRows is the estimated answer cardinality.
	EstRows float64
	// EstCost is the plan's cost annotation: the sum of estimated
	// intermediate cardinalities, a proxy for the tuples a backtracking
	// join enumerates.
	EstCost float64
}

// PlanDB plans q against db: it routes exactly like Plan, then builds the
// cost-based plan (reduced atom cardinalities, cached column statistics,
// estimated intermediate sizes) without evaluating the query. For
// EngineComparisons the plan describes the collapsed query the engine
// actually runs. For EngineColorCoding the report weights atoms by their
// reduced sizes before the I₂ selection pushdown (which is internal to the
// engine), so when a pushed-down inequality changes the relative sizes the
// executed join-tree root can differ from RootAtom; the generic and
// Yannakakis plans match the executed order exactly.
func PlanDB(q *CQ, db *DB) (*PlanReport, error) {
	r := &PlanReport{Engine: Plan(q), QuerySize: q.Size(), NumVars: q.NumVars(), RootAtom: -1}
	qe := q
	switch r.Engine {
	case EngineColorCoding:
		i1, i2, v1, ok := core.Partition(q)
		if !ok {
			r.Unsatisfiable = true
			return r, nil
		}
		r.I1, r.I2, r.K = len(i1), len(i2), len(v1)
	case EngineComparisons:
		qc, err := order.Collapse(q)
		if errors.Is(err, order.ErrInconsistent) {
			r.Unsatisfiable = true
			return r, nil
		}
		if err != nil {
			return nil, err
		}
		qe = qc
	}
	pl, err := eval.PlanFor(qe, db)
	if err != nil {
		return nil, err
	}
	r.Steps = pl.Steps
	r.EstRows = pl.EstRows
	r.EstCost = pl.Cost
	if (r.Engine == EngineYannakakis || r.Engine == EngineColorCoding) && len(qe.Atoms) > 0 {
		h, _ := plan.AtomHypergraph(qe)
		if f, ok := h.JoinForest(); ok {
			r.RootAtom = plan.OrderForest(f, pl.Inputs).JoinTree().Roots[0]
		}
	}
	return r, nil
}

// fmtEst renders a cardinality estimate compactly and deterministically.
func fmtEst(v float64) string { return strconv.FormatFloat(v, 'g', 4, 64) }

// String renders the report in the fixed multi-line layout qeval -explain
// prints (locked by the facade's golden tests).
func (r *PlanReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine: %v\n", r.Engine)
	fmt.Fprintf(&b, "query size q=%d, variables v=%d", r.QuerySize, r.NumVars)
	if r.Engine == EngineColorCoding && !r.Unsatisfiable {
		fmt.Fprintf(&b, "\nI1 (hashed) inequalities: %d, I2 (pushed-down): %d, |V1|=k=%d",
			r.I1, r.I2, r.K)
	}
	if r.Unsatisfiable {
		b.WriteString("\nunsatisfiable constraints: empty answer")
		return b.String()
	}
	if len(r.Steps) > 0 {
		b.WriteString("\nplan (stats-driven join order):")
		for i, st := range r.Steps {
			fmt.Fprintf(&b, "\n  %d. %s rows=%d binds=%d est=%s", i+1, st.Label, st.Rows, st.NewVars, fmtEst(st.Est))
		}
		fmt.Fprintf(&b, "\nestimated search cost: %s (Σ intermediate cardinalities)", fmtEst(r.EstCost))
	}
	if r.RootAtom >= 0 {
		for _, st := range r.Steps {
			if st.Atom == r.RootAtom {
				fmt.Fprintf(&b, "\njoin-tree root: %s (atom %d)", st.Label, r.RootAtom)
				break
			}
		}
	}
	fmt.Fprintf(&b, "\nestimated answer rows: %s", fmtEst(r.EstRows))
	return b.String()
}

// ExplainDB is Explain with database statistics: the rendered PlanDB
// report.
func ExplainDB(q *CQ, db *DB) (string, error) {
	r, err := PlanDB(q, db)
	if err != nil {
		return "", err
	}
	return r.String(), nil
}

// EvaluateStats runs the Theorem 2 engine explicitly with options and
// returns its statistics; the query must be acyclic with inequalities.
func EvaluateStats(q *CQ, db *DB, opts Options) (*Relation, Stats, error) {
	return core.EvaluateStats(q, db, opts)
}

// IneqFormula is a positive ∧/∨ combination of ≠ atoms — the Section 5
// extension evaluated by EvaluateIneqFormula.
type IneqFormula = core.IneqFormula

// Inequality formula constructors.
type (
	// IneqAtom wraps one ≠ atom as a formula leaf.
	IneqAtom = core.IneqAtom
	// IneqAnd is a conjunction of inequality formulas.
	IneqAnd = core.IneqAnd
	// IneqOr is a disjunction of inequality formulas.
	IneqOr = core.IneqOr
)

// EvaluateIneqFormula evaluates an acyclic pure conjunctive query under an
// arbitrary ∧/∨ formula of inequality atoms (the paper's parameter-q
// extension of Theorem 2). The query must carry no ≠/comparison atoms of
// its own — the constraints live in φ.
func EvaluateIneqFormula(q *CQ, phi IneqFormula, db *DB, opts Options) (*Relation, error) {
	return core.EvaluateIneqFormula(q, phi, db, opts)
}
