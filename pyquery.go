// Package pyquery is a library for parameterized-complexity-aware database
// query evaluation, reproducing Papadimitriou & Yannakakis, "On the
// Complexity of Database Queries" (PODS 1997 / JCSS 1999).
//
// The package exposes four engines behind one Evaluate call:
//
//   - Yannakakis' acyclic-join algorithm for pure acyclic conjunctive
//     queries (polynomial in input + output);
//   - the paper's Theorem 2 color-coding engine for acyclic conjunctive
//     queries with ≠ atoms (fixed-parameter tractable: f(k)·n log n);
//   - Klug-style preprocessing plus generic evaluation for queries with
//     order comparisons (W[1]-complete even when acyclic — Theorem 3);
//   - generic backtracking join for everything else (the n^{O(q)} baseline
//     whose exponent Theorem 1 classifies as inherent).
//
// Plan reports which engine a query gets and why. The reductions behind the
// paper's W-hierarchy classification live in internal/reductions and are
// exercised by cmd/reduce and cmd/benchrunner.
package pyquery

import (
	"fmt"

	"pyquery/internal/core"
	"pyquery/internal/eval"
	"pyquery/internal/order"
	"pyquery/internal/parser"
	"pyquery/internal/query"
	"pyquery/internal/relation"
	"pyquery/internal/yannakakis"
)

// Re-exported core types. Downstream code uses pyquery.CQ etc.; the
// internal packages stay encapsulated.
type (
	// CQ is a conjunctive query with optional ≠ and comparison atoms.
	CQ = query.CQ
	// FOQuery is a first-order query.
	FOQuery = query.FOQuery
	// DB is a database instance.
	DB = query.DB
	// Relation is a set of tuples.
	Relation = relation.Relation
	// Value is a domain element.
	Value = relation.Value
	// Term is a variable or constant in a query.
	Term = query.Term
	// Var identifies a query variable.
	Var = query.Var
	// Atom is a relational atom.
	Atom = query.Atom
	// Ineq is an inequality (≠) atom.
	Ineq = query.Ineq
	// Cmp is a comparison (<, ≤) atom.
	Cmp = query.Cmp
	// Parser parses the textual query syntax.
	Parser = parser.Parser
	// Symbols interns symbolic constants.
	Symbols = parser.Symbols
	// Stats reports what the Theorem 2 engine did.
	Stats = core.Stats
	// Options configures evaluation. Parallelism applies to every engine
	// (0 = GOMAXPROCS, 1 = serial); the remaining fields configure the
	// Theorem 2 color-coding engine and are ignored elsewhere.
	Options = core.Options
)

// Constructors re-exported for query building.
var (
	// V builds a variable term.
	V = query.V
	// C builds a constant term.
	C = query.C
	// NewAtom builds a relational atom.
	NewAtom = query.NewAtom
	// NeqVars builds x ≠ y.
	NeqVars = query.NeqVars
	// NeqConst builds x ≠ c.
	NeqConst = query.NeqConst
	// Lt builds a strict comparison.
	Lt = query.Lt
	// Le builds a weak comparison.
	Le = query.Le
	// NewDB returns an empty database.
	NewDB = query.NewDB
	// NewTable returns an empty base relation of the given arity.
	NewTable = query.NewTable
	// Table builds a base relation from rows.
	Table = query.Table
	// NewParser returns a parser with a fresh symbol table.
	NewParser = parser.New
	// NewSymbols returns an empty symbol table.
	NewSymbols = parser.NewSymbols
	// LoadCSV loads a CSV stream as a relation.
	LoadCSV = parser.LoadCSV
)

// Engine identifies which evaluation algorithm Plan selects.
type Engine int

// Engines, in dispatch order.
const (
	// EngineYannakakis: pure acyclic conjunctive query.
	EngineYannakakis Engine = iota
	// EngineColorCoding: acyclic conjunctive query with ≠ atoms (Theorem 2).
	EngineColorCoding
	// EngineComparisons: comparison atoms present — consistency check,
	// equality collapse, then generic evaluation (Theorem 3 says no FPT
	// algorithm is expected).
	EngineComparisons
	// EngineGeneric: cyclic query — backtracking join, n^{O(q)}.
	EngineGeneric
)

func (e Engine) String() string {
	switch e {
	case EngineYannakakis:
		return "yannakakis (acyclic, poly input+output)"
	case EngineColorCoding:
		return "color-coding (Theorem 2, f(k)·n log n)"
	case EngineComparisons:
		return "comparisons (Theorem 3 territory, generic join)"
	case EngineGeneric:
		return "generic backtracking join (n^O(q))"
	}
	return "unknown"
}

// Plan selects the engine for a query.
func Plan(q *CQ) Engine {
	if len(q.Cmps) > 0 {
		for _, c := range q.Cmps {
			if c.Left.IsVar || c.Right.IsVar {
				return EngineComparisons
			}
		}
	}
	if !core.IsAcyclicWithIneqs(q) {
		return EngineGeneric
	}
	if len(q.Ineqs) > 0 {
		return EngineColorCoding
	}
	return EngineYannakakis
}

// Evaluate computes Q(d), dispatching to the best engine for the query's
// class. The answer uses the positional schema 0…len(head)−1. Evaluation
// uses the default options — in particular Parallelism 0, i.e. GOMAXPROCS
// workers; pass Options{Parallelism: 1} to EvaluateOpts for the serial
// engines.
func Evaluate(q *CQ, db *DB) (*Relation, error) {
	return EvaluateOpts(q, db, Options{})
}

// EvaluateOpts is Evaluate with explicit options. Options.Parallelism is
// forwarded to whichever engine Plan selects (0 = GOMAXPROCS, 1 = serial);
// the answer set is the same at every parallelism level.
func EvaluateOpts(q *CQ, db *DB, opts Options) (*Relation, error) {
	switch Plan(q) {
	case EngineYannakakis:
		return yannakakis.EvaluateOpts(q, db, yannakakis.Options{Parallelism: opts.Parallelism})
	case EngineColorCoding:
		return core.EvaluateOpts(q, db, opts)
	case EngineComparisons:
		return order.EvaluateOpts(q, db, eval.Options{Parallelism: opts.Parallelism})
	default:
		return eval.ConjunctiveOpts(q, db, eval.Options{Parallelism: opts.Parallelism})
	}
}

// EvaluateBool decides Q(d) ≠ ∅ with the dispatched engine.
func EvaluateBool(q *CQ, db *DB) (bool, error) {
	return EvaluateBoolOpts(q, db, Options{})
}

// EvaluateBoolOpts is EvaluateBool with explicit options.
func EvaluateBoolOpts(q *CQ, db *DB, opts Options) (bool, error) {
	switch Plan(q) {
	case EngineYannakakis:
		return yannakakis.EvaluateBoolOpts(q, db, yannakakis.Options{Parallelism: opts.Parallelism})
	case EngineColorCoding:
		return core.EvaluateBoolOpts(q, db, opts)
	case EngineComparisons:
		return order.EvaluateBoolOpts(q, db, eval.Options{Parallelism: opts.Parallelism})
	default:
		return eval.ConjunctiveBoolOpts(q, db, eval.Options{Parallelism: opts.Parallelism})
	}
}

// Decide answers the decision problem t ∈ Q(d): substitute the tuple into
// the head and test emptiness.
func Decide(q *CQ, db *DB, t []Value) (bool, error) {
	bound, err := q.BindHead(t)
	if query.IsTrivialMismatch(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return EvaluateBool(bound, db)
}

// EvaluateFO evaluates a first-order query under active-domain semantics.
func EvaluateFO(q *FOQuery, db *DB) (*Relation, error) {
	return eval.FirstOrder(q, db)
}

// Explain describes the dispatch decision and, for the color-coding
// engine, the parameter split the paper's Theorem 2 works with.
func Explain(q *CQ) string {
	e := Plan(q)
	s := fmt.Sprintf("engine: %v\nquery size q=%d, variables v=%d", e, q.Size(), q.NumVars())
	if e == EngineColorCoding {
		i1, i2, v1, ok := core.Partition(q)
		if !ok {
			return s + "\nunsatisfiable inequality (x≠x): empty answer"
		}
		s += fmt.Sprintf("\nI1 (hashed) inequalities: %d, I2 (pushed-down): %d, |V1|=k=%d",
			len(i1), len(i2), len(v1))
	}
	return s
}

// EvaluateStats runs the Theorem 2 engine explicitly with options and
// returns its statistics; the query must be acyclic with inequalities.
func EvaluateStats(q *CQ, db *DB, opts Options) (*Relation, Stats, error) {
	return core.EvaluateStats(q, db, opts)
}

// IneqFormula is a positive ∧/∨ combination of ≠ atoms — the Section 5
// extension evaluated by EvaluateIneqFormula.
type IneqFormula = core.IneqFormula

// Inequality formula constructors.
type (
	// IneqAtom wraps one ≠ atom as a formula leaf.
	IneqAtom = core.IneqAtom
	// IneqAnd is a conjunction of inequality formulas.
	IneqAnd = core.IneqAnd
	// IneqOr is a disjunction of inequality formulas.
	IneqOr = core.IneqOr
)

// EvaluateIneqFormula evaluates an acyclic pure conjunctive query under an
// arbitrary ∧/∨ formula of inequality atoms (the paper's parameter-q
// extension of Theorem 2). The query must carry no ≠/comparison atoms of
// its own — the constraints live in φ.
func EvaluateIneqFormula(q *CQ, phi IneqFormula, db *DB, opts Options) (*Relation, error) {
	return core.EvaluateIneqFormula(q, phi, db, opts)
}
