// Package pyquery is a library for parameterized-complexity-aware database
// query evaluation, reproducing Papadimitriou & Yannakakis, "On the
// Complexity of Database Queries" (PODS 1997 / JCSS 1999).
//
// The package exposes six engines behind one Evaluate call:
//
//   - Yannakakis' acyclic-join algorithm for pure acyclic conjunctive
//     queries (polynomial in input + output);
//   - the paper's Theorem 2 color-coding engine for acyclic conjunctive
//     queries with ≠ atoms (fixed-parameter tractable: f(k)·n log n);
//   - Klug-style preprocessing plus generic evaluation for queries with
//     order comparisons (W[1]-complete even when acyclic — Theorem 3);
//   - a hypertree-decomposition engine for cyclic pure queries of
//     generalized hypertree width ≤ 3 (bags materialized by hash joins,
//     then the shared Yannakakis passes — polynomial for fixed width,
//     cost-gated against the backtracker estimate);
//   - a worst-case-optimal leapfrog-triejoin engine for dense cyclic pure
//     queries: sorted-trie intersections under one global variable order,
//     running in Õ(AGM bound) — selected when that bound beats the
//     backtracker's skew-aware worst case;
//   - generic backtracking join for everything else (the n^{O(q)} baseline
//     whose exponent Theorem 1 classifies as inherent).
//
// Plan reports which engine a query gets and why. The reductions behind the
// paper's W-hierarchy classification live in internal/reductions and are
// exercised by cmd/reduce and cmd/benchrunner.
package pyquery

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"pyquery/internal/core"
	"pyquery/internal/decomp"
	"pyquery/internal/eval"
	"pyquery/internal/order"
	"pyquery/internal/parser"
	"pyquery/internal/plan"
	"pyquery/internal/query"
	"pyquery/internal/relation"
	"pyquery/internal/wcoj"
)

// Re-exported core types. Downstream code uses pyquery.CQ etc.; the
// internal packages stay encapsulated.
type (
	// CQ is a conjunctive query with optional ≠ and comparison atoms.
	CQ = query.CQ
	// FOQuery is a first-order query.
	FOQuery = query.FOQuery
	// DB is a database instance.
	DB = query.DB
	// Relation is a set of tuples.
	Relation = relation.Relation
	// Value is a domain element.
	Value = relation.Value
	// Term is a variable or constant in a query.
	Term = query.Term
	// Var identifies a query variable.
	Var = query.Var
	// Atom is a relational atom.
	Atom = query.Atom
	// Ineq is an inequality (≠) atom.
	Ineq = query.Ineq
	// Cmp is a comparison (<, ≤) atom.
	Cmp = query.Cmp
	// Parser parses the textual query syntax.
	Parser = parser.Parser
	// Symbols interns symbolic constants.
	Symbols = parser.Symbols
	// Stats reports what the Theorem 2 engine did.
	Stats = core.Stats
	// Options configures evaluation. Parallelism applies to every engine
	// (0 = GOMAXPROCS, 1 = serial); the remaining fields configure the
	// Theorem 2 color-coding engine and are ignored elsewhere.
	Options = core.Options
)

// Constructors re-exported for query building.
var (
	// V builds a variable term.
	V = query.V
	// C builds a constant term.
	C = query.C
	// NewAtom builds a relational atom.
	NewAtom = query.NewAtom
	// NeqVars builds x ≠ y.
	NeqVars = query.NeqVars
	// NeqConst builds x ≠ c.
	NeqConst = query.NeqConst
	// Lt builds a strict comparison.
	Lt = query.Lt
	// Le builds a weak comparison.
	Le = query.Le
	// NewDB returns an empty database.
	NewDB = query.NewDB
	// NewTable returns an empty base relation of the given arity.
	NewTable = query.NewTable
	// Table builds a base relation from rows.
	Table = query.Table
	// NewParser returns a parser with a fresh symbol table.
	NewParser = parser.New
	// NewSymbols returns an empty symbol table.
	NewSymbols = parser.NewSymbols
	// LoadCSV loads a CSV stream as a relation.
	LoadCSV = parser.LoadCSV
)

// Engine identifies which evaluation algorithm Plan selects.
type Engine int

// Engines, in dispatch order.
const (
	// EngineYannakakis: pure acyclic conjunctive query.
	EngineYannakakis Engine = iota
	// EngineColorCoding: acyclic conjunctive query with ≠ atoms (Theorem 2).
	EngineColorCoding
	// EngineComparisons: comparison atoms present — consistency check,
	// equality collapse, then generic evaluation (Theorem 3 says no FPT
	// algorithm is expected).
	EngineComparisons
	// EngineGeneric: cyclic query — backtracking join, n^{O(q)}.
	EngineGeneric
	// EngineDecomp: cyclic pure query with a width-≤3 generalized hypertree
	// decomposition — bags of ≤3 atoms are materialized by hash joins and
	// the bag tree runs the shared Yannakakis passes, polynomial for fixed
	// width. Plan reports the class structurally; the database-dependent
	// cost gate in PlanDB/EvaluateOpts may still keep the backtracker when
	// the bag estimates lose (and Options.NoDecomp forces that fallback).
	EngineDecomp
	// EngineWCOJ: cyclic pure query the decomposition engine passed over,
	// whose AGM fractional-cover bound beats the backtracker's skew-aware
	// worst-case cost — evaluated by leapfrog triejoin over sorted tries, in
	// time Õ(AGM). Database-dependent, so only PlanDB/EvaluateOpts report it
	// (Plan's query-only classification cannot); Options.NoWCOJ forces the
	// generic fallback.
	EngineWCOJ
)

func (e Engine) String() string {
	switch e {
	case EngineYannakakis:
		return "yannakakis (acyclic, poly input+output)"
	case EngineColorCoding:
		return "color-coding (Theorem 2, f(k)·n log n)"
	case EngineComparisons:
		return "comparisons (Theorem 3 territory, generic join)"
	case EngineGeneric:
		return "generic backtracking join (n^O(q))"
	case EngineDecomp:
		return "hypertree decomposition (bag join + Yannakakis, width ≤ 3)"
	case EngineWCOJ:
		return "worst-case-optimal join (leapfrog triejoin, Õ(AGM bound))"
	}
	return "unknown"
}

// classify applies the query-only class boundaries shared by Plan,
// planEval, and PlanDB. EngineDecomp here means "cyclic pure candidate" —
// whether a width-≤3 decomposition actually exists (and, with a database,
// whether it wins the cost gate) is the caller's refinement.
func classify(q *CQ) Engine {
	if len(q.Cmps) > 0 {
		for _, c := range q.Cmps {
			if c.Left.IsVar || c.Right.IsVar {
				return EngineComparisons
			}
		}
	}
	if !core.IsAcyclicWithIneqs(q) {
		// Cyclic: bounded-width pure queries are decomposition candidates
		// (≠ atoms and comparisons stay with the backtracker, which checks
		// them mid-plan).
		if len(q.Ineqs) == 0 {
			return EngineDecomp
		}
		return EngineGeneric
	}
	if len(q.Ineqs) > 0 {
		return EngineColorCoding
	}
	return EngineYannakakis
}

// Plan selects the engine for a query.
func Plan(q *CQ) Engine {
	e := classify(q)
	if e == EngineDecomp && !decomp.Decomposable(q) {
		return EngineGeneric
	}
	return e
}

// Evaluate computes Q(d), dispatching to the best engine for the query's
// class. The answer uses the positional schema 0…len(head)−1. Evaluation
// uses the default options — in particular Parallelism 0, i.e. GOMAXPROCS
// workers; pass Options{Parallelism: 1} to EvaluateOpts for the serial
// engines.
func Evaluate(q *CQ, db *DB) (*Relation, error) {
	return EvaluateOpts(q, db, Options{})
}

// EvaluateOpts is Evaluate with explicit options. Options.Parallelism is
// forwarded to whichever engine the router selects (0 = GOMAXPROCS,
// 1 = serial); the answer set is the same at every parallelism level.
//
// Since the prepared-statement redesign this is a thin wrapper over the
// per-database plan cache: the (query, options) pair is fingerprinted,
// compiled once into a Prepared, and re-executed on repeats — so one-shot
// callers that loop over the same query silently amortize all planning.
// Options.NoCache restores true from-scratch evaluation.
func EvaluateOpts(q *CQ, db *DB, opts Options) (*Relation, error) {
	p, err := prepared(q, db, opts)
	if err != nil {
		return nil, err
	}
	return p.Exec(context.Background())
}

// EvaluateBool decides Q(d) ≠ ∅ with the dispatched engine.
func EvaluateBool(q *CQ, db *DB) (bool, error) {
	return EvaluateBoolOpts(q, db, Options{})
}

// EvaluateBoolOpts is EvaluateBool with explicit options; like
// EvaluateOpts it executes through the per-database plan cache.
func EvaluateBoolOpts(q *CQ, db *DB, opts Options) (bool, error) {
	p, err := prepared(q, db, opts)
	if err != nil {
		return false, err
	}
	return p.ExecBool(context.Background())
}

// Decide answers the decision problem t ∈ Q(d). It executes through the
// plan cache's prepared statement (head variables become pre-bound search
// slots), so repeated membership tests against one query amortize instead
// of re-planning a head-bound query per call.
func Decide(q *CQ, db *DB, t []Value) (bool, error) {
	p, err := prepared(q, db, Options{})
	if err != nil {
		return false, err
	}
	return p.Decide(context.Background(), t)
}

// EvaluateFO evaluates a first-order query under active-domain semantics.
func EvaluateFO(q *FOQuery, db *DB) (res *Relation, err error) {
	defer recoverInternal("firstorder", &err)
	return eval.FirstOrder(q, db)
}

// Explain describes the dispatch decision and, for the color-coding
// engine, the parameter split the paper's Theorem 2 works with. It
// inspects only the query; PlanDB/ExplainDB add the database-dependent
// cost-based plan.
func Explain(q *CQ) string {
	e := Plan(q)
	s := fmt.Sprintf("engine: %v\nquery size q=%d, variables v=%d", e, q.Size(), q.NumVars())
	if e == EngineColorCoding {
		i1, i2, v1, ok := core.Partition(q)
		if !ok {
			return s + "\nunsatisfiable inequality (x≠x): empty answer"
		}
		s += fmt.Sprintf("\nI1 (hashed) inequalities: %d, I2 (pushed-down): %d, |V1|=k=%d",
			len(i1), len(i2), len(v1))
	}
	return s
}

// PlanStep is one ordered join step of a PlanReport, re-exported from
// internal/plan.
type PlanStep = plan.Step

// PlanReport is the structured planning outcome for a (query, database)
// pair: the routing decision plus the cost-based plan the selected engine
// will execute, with estimated cardinalities from the shared statistics
// layer (internal/stats cached on the DB, internal/plan's distinct-count
// selectivity model).
type PlanReport struct {
	// Engine is the routing decision (identical to Plan's).
	Engine Engine
	// QuerySize and NumVars are the paper's two parameters q and v.
	QuerySize, NumVars int
	// K, I1, I2 describe the Theorem 2 inequality partition
	// (EngineColorCoding only): |V₁| and the I₁/I₂ sizes.
	K, I1, I2 int
	// Unsatisfiable marks queries whose constraints alone force the empty
	// answer (an x≠x inequality, or inconsistent comparisons); no plan is
	// produced.
	Unsatisfiable bool
	// Steps is the cost-based join order — the order the generic
	// backtracker executes, built from the same model that weights the
	// acyclic engines' join trees. Rows is each atom's exact reduced
	// cardinality; Est the estimated cumulative cardinality.
	Steps []PlanStep
	// RootAtom indexes q.Atoms at the weighted join-tree root (acyclic
	// engines only; -1 otherwise).
	RootAtom int
	// Width and Bags describe the width-≤3 hypertree decomposition of a
	// structurally eligible cyclic query (Width 0 when none was
	// considered). When the bag estimates beat the backtracker the Engine
	// stays EngineDecomp and RootBag is the estimate-weighted bag-tree
	// root; otherwise the Engine field reports the EngineGeneric fallback
	// and the rendered report notes the rejected decomposition.
	Width int
	Bags  []PlanBag
	// DecompCost is Σ estimated bag materialization costs — the number the
	// cost gate weighs against EstCost.
	DecompCost float64
	// RootBag indexes Bags at the weighted bag-tree root (-1 otherwise).
	RootBag int
	// AGMCost, WorstCost, and WCOJOrder describe the worst-case-optimal
	// route of a cyclic pure query the decomposition engine passed over:
	// the AGM fractional-cover bound on the join's output, the skew-aware
	// worst-case cost of the backtracker it was weighed against, and the
	// global variable order (all zero/empty when wcoj was not considered).
	// Engine is EngineWCOJ exactly when AGMCost strictly beat WorstCost.
	AGMCost, WorstCost float64
	WCOJOrder          string
	// EstRows is the estimated answer cardinality.
	EstRows float64
	// EstCost is the plan's cost annotation: the sum of estimated
	// intermediate cardinalities, a proxy for the tuples a backtracking
	// join enumerates.
	EstCost float64
}

// PlanBag is the report view of one decomposition bag.
type PlanBag struct {
	// Atoms indexes q.Atoms at the bag's guard atoms.
	Atoms []int
	// Label renders the guard atoms, Vars the bag's χ.
	Label, Vars string
	// Est is the bag's estimated materialized cardinality.
	Est float64
}

// PlanDB plans q against db: it routes exactly like Plan — refining
// EngineDecomp with the database-dependent cost gate — then builds the
// cost-based plan (reduced atom cardinalities, cached column statistics,
// estimated intermediate sizes) without evaluating the query. For
// EngineComparisons the plan describes the collapsed query the engine
// actually runs. For EngineColorCoding the report weights atoms by their
// reduced sizes before the I₂ selection pushdown (which is internal to the
// engine), so when a pushed-down inequality changes the relative sizes the
// executed join-tree root can differ from RootAtom; the generic and
// Yannakakis plans match the executed order exactly.
func PlanDB(q *CQ, db *DB) (*PlanReport, error) {
	// classify, not Plan: the decomposition block below resolves existence
	// and the cost gate in one PlanFor call instead of Plan's throwaway
	// structural search plus a second one.
	r := &PlanReport{Engine: classify(q), QuerySize: q.Size(), NumVars: q.NumVars(), RootAtom: -1, RootBag: -1}
	qe := q
	switch r.Engine {
	case EngineColorCoding:
		i1, i2, v1, ok := core.Partition(q)
		if !ok {
			r.Unsatisfiable = true
			return r, nil
		}
		r.I1, r.I2, r.K = len(i1), len(i2), len(v1)
	case EngineComparisons:
		qc, err := order.Collapse(q)
		if errors.Is(err, order.ErrInconsistent) {
			r.Unsatisfiable = true
			return r, nil
		}
		if err != nil {
			return nil, err
		}
		qe = qc
	}
	pl, err := eval.PlanFor(qe, db)
	if err != nil {
		return nil, err
	}
	r.Steps = pl.Steps
	r.EstRows = pl.EstRows
	r.EstCost = pl.Cost
	if (r.Engine == EngineYannakakis || r.Engine == EngineColorCoding) && len(qe.Atoms) > 0 {
		h, _ := plan.AtomHypergraph(qe)
		if f, ok := h.JoinForest(); ok {
			r.RootAtom = plan.OrderForest(f, pl.Inputs).JoinTree().Roots[0]
		}
	}
	if r.Engine == EngineDecomp {
		rt, err := decomp.PlanFor(q, db)
		if err != nil {
			r.Engine = EngineGeneric
		} else {
			r.Width = rt.Width
			r.DecompCost = rt.Cost
			for _, bag := range rt.Bags {
				pb := PlanBag{Atoms: bag.Guards, Est: bag.Est}
				var lb, vb strings.Builder
				lb.WriteByte('{')
				for i, ai := range bag.Guards {
					if i > 0 {
						lb.WriteString(", ")
					}
					lb.WriteString(q.Atoms[ai].String())
				}
				lb.WriteByte('}')
				vb.WriteByte('(')
				for i, v := range bag.Vars {
					if i > 0 {
						vb.WriteByte(',')
					}
					fmt.Fprintf(&vb, "x%d", v)
				}
				vb.WriteByte(')')
				pb.Label, pb.Vars = lb.String(), vb.String()
				r.Bags = append(r.Bags, pb)
			}
			if rt.Use {
				r.RootBag = rt.Root
			} else {
				r.Engine = EngineGeneric
			}
		}
		// Cyclic pure query without a winning decomposition: weigh the AGM
		// bound against the backtracker's worst case — the wcoj gate. Both
		// are bounds (not estimates), so this comparison is like-for-like
		// and independent of the estimate-based EstCost above.
		if r.Engine == EngineGeneric {
			if wr, err := wcoj.PlanFor(q, db); err == nil {
				r.AGMCost, r.WorstCost = wr.Cost, wr.WorstCost
				var ob strings.Builder
				ob.WriteByte('(')
				for i, v := range wr.Order {
					if i > 0 {
						ob.WriteByte(',')
					}
					fmt.Fprintf(&ob, "x%d", v)
				}
				ob.WriteByte(')')
				r.WCOJOrder = ob.String()
				if wr.Use {
					r.Engine = EngineWCOJ
				}
			}
		}
	}
	return r, nil
}

// fmtEst renders a cardinality estimate compactly and deterministically.
func fmtEst(v float64) string { return strconv.FormatFloat(v, 'g', 4, 64) }

// String renders the report in the fixed multi-line layout qeval -explain
// prints (locked by the facade's golden tests).
func (r *PlanReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine: %v\n", r.Engine)
	fmt.Fprintf(&b, "query size q=%d, variables v=%d", r.QuerySize, r.NumVars)
	if r.Engine == EngineColorCoding && !r.Unsatisfiable {
		fmt.Fprintf(&b, "\nI1 (hashed) inequalities: %d, I2 (pushed-down): %d, |V1|=k=%d",
			r.I1, r.I2, r.K)
	}
	if r.Unsatisfiable {
		b.WriteString("\nunsatisfiable constraints: empty answer")
		return b.String()
	}
	if len(r.Steps) > 0 {
		b.WriteString("\nplan (stats-driven join order):")
		for i, st := range r.Steps {
			fmt.Fprintf(&b, "\n  %d. %s rows=%d binds=%d est=%s", i+1, st.Label, st.Rows, st.NewVars, fmtEst(st.Est))
		}
		fmt.Fprintf(&b, "\nestimated search cost: %s (Σ intermediate cardinalities)", fmtEst(r.EstCost))
	}
	if r.Width > 0 {
		if r.Engine == EngineDecomp {
			fmt.Fprintf(&b, "\ndecomposition (width %d, est cost %s):", r.Width, fmtEst(r.DecompCost))
			for i, bag := range r.Bags {
				fmt.Fprintf(&b, "\n  bag %d. %s vars=%s est=%s", i+1, bag.Label, bag.Vars, fmtEst(bag.Est))
			}
			fmt.Fprintf(&b, "\nbag-tree root: bag %d", r.RootBag+1)
		} else {
			fmt.Fprintf(&b, "\ndecomposition (width %d) rejected: est cost %s ≥ backtracker %s",
				r.Width, fmtEst(r.DecompCost), fmtEst(r.EstCost))
		}
	}
	if r.WCOJOrder != "" {
		if r.Engine == EngineWCOJ {
			fmt.Fprintf(&b, "\nworst-case-optimal join: order %s, AGM bound %s < worst-case backtracker %s",
				r.WCOJOrder, fmtEst(r.AGMCost), fmtEst(r.WorstCost))
		} else {
			fmt.Fprintf(&b, "\nworst-case-optimal join rejected: AGM bound %s ≥ worst-case backtracker %s",
				fmtEst(r.AGMCost), fmtEst(r.WorstCost))
		}
	}
	if r.RootAtom >= 0 {
		for _, st := range r.Steps {
			if st.Atom == r.RootAtom {
				fmt.Fprintf(&b, "\njoin-tree root: %s (atom %d)", st.Label, r.RootAtom)
				break
			}
		}
	}
	fmt.Fprintf(&b, "\nestimated answer rows: %s", fmtEst(r.EstRows))
	return b.String()
}

// ExplainDB is Explain with database statistics: the rendered PlanDB
// report.
func ExplainDB(q *CQ, db *DB) (string, error) {
	r, err := PlanDB(q, db)
	if err != nil {
		return "", err
	}
	return r.String(), nil
}

// EvaluateStats runs the Theorem 2 engine explicitly with options and
// returns its statistics; the query must be acyclic with inequalities.
func EvaluateStats(q *CQ, db *DB, opts Options) (res *Relation, st Stats, err error) {
	defer recoverInternal("colorcoding", &err)
	return core.EvaluateStats(q, db, opts)
}

// IneqFormula is a positive ∧/∨ combination of ≠ atoms — the Section 5
// extension evaluated by EvaluateIneqFormula.
type IneqFormula = core.IneqFormula

// Inequality formula constructors.
type (
	// IneqAtom wraps one ≠ atom as a formula leaf.
	IneqAtom = core.IneqAtom
	// IneqAnd is a conjunction of inequality formulas.
	IneqAnd = core.IneqAnd
	// IneqOr is a disjunction of inequality formulas.
	IneqOr = core.IneqOr
)

// EvaluateIneqFormula evaluates an acyclic pure conjunctive query under an
// arbitrary ∧/∨ formula of inequality atoms (the paper's parameter-q
// extension of Theorem 2). The query must carry no ≠/comparison atoms of
// its own — the constraints live in φ.
func EvaluateIneqFormula(q *CQ, phi IneqFormula, db *DB, opts Options) (res *Relation, err error) {
	defer recoverInternal("colorcoding", &err)
	return core.EvaluateIneqFormula(q, phi, db, opts)
}
